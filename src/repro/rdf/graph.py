"""An in-memory indexed RDF triple store.

The :class:`Graph` maintains three permutation indexes (SPO, POS, OSP), the
standard layout for in-memory RDF stores, so that any triple pattern with
fixed terms can be answered without a full scan.  This is the substrate on
which shape extraction, SHACL validation, the S3PG data transformation
(Algorithm 1), and the SPARQL engine all run.

Physically the store is dictionary-encoded (:mod:`repro.storage`): every
term is interned to a dense integer id once, and each index bucket is an
:class:`~repro.storage.postings.IntPostings` — a sorted ``array('q')`` of
ids — instead of a Python ``set`` of term objects.  Index traversal is
int comparisons over machine arrays; term objects are only touched at the
API boundary.  Graphs can be persisted to and memory-mapped back from
binary snapshots (:mod:`repro.storage.snapshot`) without re-parsing.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..namespaces import RDF_TYPE, RDFS
from ..storage.intern import TermInterner
from ..storage.postings import IntPostings
from .terms import IRI, BlankNode, Literal, Object, Subject, Triple

_SUBCLASS_OF = IRI(RDFS.subClassOf)
_RDF_TYPE = IRI(RDF_TYPE)

_new_triple = Triple.__new__
_set = object.__setattr__


def _triple(s: Subject, p: IRI, o: Object) -> Triple:
    # Bypass Triple.__init__ validation: every stored term was already
    # validated on insertion, and decode is the hottest path of the
    # streaming transformation (the graph is scanned twice per run).
    t = _new_triple(Triple)
    _set(t, "s", s)
    _set(t, "p", p)
    _set(t, "o", o)
    return t


@dataclass(frozen=True)
class GraphStats:
    """Dataset characteristics as reported in Table 2 of the paper."""

    n_triples: int
    n_subjects: int
    n_objects: int
    n_literals: int
    n_instances: int
    n_classes: int
    n_properties: int
    size_bytes: int

    def as_row(self) -> dict[str, int]:
        """Return the statistics as a plain dict (one table row)."""
        return {
            "# of triples": self.n_triples,
            "# of objects": self.n_objects,
            "# of subjects": self.n_subjects,
            "# of literals": self.n_literals,
            "# of instances": self.n_instances,
            "# of classes": self.n_classes,
            "# of properties": self.n_properties,
            "size in bytes": self.size_bytes,
        }


class Graph:
    """A set of RDF triples with SPO/POS/OSP indexes.

    The store behaves like a set of :class:`Triple` objects: adding a
    duplicate triple is a no-op, iteration yields each triple once, and the
    usual set algebra (union / difference) is available for computing and
    applying deltas between graph snapshots.

    Examples:
        >>> g = Graph()
        >>> alice = IRI("http://example.org/alice")
        >>> _ = g.add(Triple(alice, IRI(RDF_TYPE), IRI("http://example.org/Person")))
        >>> len(g)
        1
    """

    def __init__(self, triples: Iterable[Triple] | None = None):
        #: Term ⇄ dense-int dictionary shared by all three indexes.
        self._terms = TermInterner()
        # spo[s][p] -> postings of o ; pos[p][o] -> postings of s ;
        # osp[o][s] -> postings of p  (all keys/values are interned ids).
        self._spo: dict[int, dict[int, IntPostings]] = {}
        self._pos: dict[int, dict[int, IntPostings]] = {}
        self._osp: dict[int, dict[int, IntPostings]] = {}
        self._size = 0
        # Incrementally maintained statistics for the query planner:
        # triples per predicate and distinct subjects per predicate.  Both
        # are O(1) dict updates on add/remove; distinct *objects* per
        # predicate need no counter (len of the POS bucket).
        self._p_count: dict[int, int] = {}
        self._p_subjects: dict[int, int] = {}
        #: Monotonic mutation counter (plan/statistics cache invalidation).
        self._version = 0
        if triples is not None:
            for t in triples:
                self.add(t)

    # ------------------------------------------------------------------ #
    # Storage plumbing (snapshot friend interface)
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_storage(
        cls,
        terms: TermInterner,
        spo: dict,
        pos: dict,
        osp: dict,
        size: int,
        p_count: dict[int, int],
        p_subjects: dict[int, int],
        version: int = 0,
    ) -> "Graph":
        """Assemble a graph directly from physical-layer parts (snapshot load)."""
        g = cls.__new__(cls)
        g._terms = terms
        g._spo = spo
        g._pos = pos
        g._osp = osp
        g._size = size
        g._p_count = p_count
        g._p_subjects = p_subjects
        g._version = version
        return g

    def _storage(self):
        """The physical-layer parts, for the snapshot writer."""
        return (self._terms, self._spo, self._pos, self._osp, self._p_count, self._p_subjects)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; return True when it was not already present."""
        intern = self._terms.intern
        si = intern(triple.s)
        pi = intern(triple.p)
        oi = intern(triple.o)
        by_p = self._spo.setdefault(si, {})
        objs = by_p.get(pi)
        if objs is None:
            # Empty buckets are always deleted, so a present bucket is
            # non-empty: a fresh bucket means a new (s, p) pair.
            objs = by_p[pi] = IntPostings()
            new_pair = True
        else:
            if not objs.add(oi):
                return False
            new_pair = False
        if new_pair:
            objs.add(oi)
        by_o = self._pos.setdefault(pi, {})
        subs = by_o.get(oi)
        if subs is None:
            subs = by_o[oi] = IntPostings()
        subs.add(si)
        by_s = self._osp.setdefault(oi, {})
        preds = by_s.get(si)
        if preds is None:
            preds = by_s[si] = IntPostings()
        preds.add(pi)
        self._size += 1
        self._version += 1
        self._p_count[pi] = self._p_count.get(pi, 0) + 1
        if new_pair:
            self._p_subjects[pi] = self._p_subjects.get(pi, 0) + 1
        return True

    def add_triple(self, s: Subject, p: IRI, o: Object) -> bool:
        """Convenience wrapper building the :class:`Triple` for the caller."""
        return self.add(Triple(s, p, o))

    def remove(self, triple: Triple) -> bool:
        """Delete ``triple``; return True when it was present."""
        lookup = self._terms.lookup
        si = lookup(triple.s)
        if si is None:
            return False
        pi = lookup(triple.p)
        oi = lookup(triple.o)
        if pi is None or oi is None:
            return False
        by_p = self._spo.get(si)
        objs = by_p.get(pi) if by_p is not None else None
        if objs is None or not objs.discard(oi):
            return False
        if not objs:
            del by_p[pi]
            if not by_p:
                del self._spo[si]
            remaining_subjects = self._p_subjects[pi] - 1
            if remaining_subjects:
                self._p_subjects[pi] = remaining_subjects
            else:
                del self._p_subjects[pi]
        subs = self._pos[pi][oi]
        subs.discard(si)
        if not subs:
            del self._pos[pi][oi]
            if not self._pos[pi]:
                del self._pos[pi]
        preds = self._osp[oi][si]
        preds.discard(pi)
        if not preds:
            del self._osp[oi][si]
            if not self._osp[oi]:
                del self._osp[oi]
        self._size -= 1
        self._version += 1
        remaining = self._p_count[pi] - 1
        if remaining:
            self._p_count[pi] = remaining
        else:
            del self._p_count[pi]
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def discard_all(self, triples: Iterable[Triple]) -> int:
        """Remove many triples; return the number actually removed."""
        return sum(1 for t in triples if self.remove(t))

    def clear(self) -> None:
        """Remove every triple."""
        self._terms = TermInterner()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._p_count.clear()
        self._p_subjects.clear()
        self._size = 0
        self._version += 1

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, triple: Triple) -> bool:
        lookup = self._terms.lookup
        si = lookup(triple.s)
        if si is None:
            return False
        pi = lookup(triple.p)
        oi = lookup(triple.o)
        if pi is None or oi is None:
            return False
        by_p = self._spo.get(si)
        if by_p is None:
            return False
        objs = by_p.get(pi)
        return objs is not None and oi in objs

    def __iter__(self) -> Iterator[Triple]:
        term = self._terms.term
        for si, by_p in self._spo.items():
            s = term(si)
            for pi, objs in by_p.items():
                p = term(pi)
                for oi in objs:
                    yield _triple(s, p, term(oi))

    def triples(
        self,
        s: Subject | None = None,
        p: IRI | None = None,
        o: Object | None = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern; ``None`` is a wildcard.

        The best index for the bound positions is chosen automatically.
        """
        lookup = self._terms.lookup
        term = self._terms.term
        si = pi = oi = None
        if s is not None:
            si = lookup(s)
            if si is None:
                return
        if p is not None:
            pi = lookup(p)
            if pi is None:
                return
        if o is not None:
            oi = lookup(o)
            if oi is None:
                return
        if si is not None:
            by_p = self._spo.get(si)
            if by_p is None:
                return
            if pi is not None:
                objs = by_p.get(pi)
                if objs is None:
                    return
                if oi is not None:
                    if oi in objs:
                        yield _triple(s, p, o)
                    return
                for obj_id in objs:
                    yield _triple(s, p, term(obj_id))
                return
            if oi is not None:
                preds = self._osp.get(oi, {}).get(si)
                if preds is None:
                    return
                for pred_id in preds:
                    yield _triple(s, term(pred_id), o)
                return
            for pred_id, objs in by_p.items():
                pred = term(pred_id)
                for obj_id in objs:
                    yield _triple(s, pred, term(obj_id))
            return
        if pi is not None:
            by_o = self._pos.get(pi)
            if by_o is None:
                return
            if oi is not None:
                for sub_id in by_o.get(oi, ()):
                    yield _triple(term(sub_id), p, o)
                return
            for obj_id, subs in by_o.items():
                obj = term(obj_id)
                for sub_id in subs:
                    yield _triple(term(sub_id), p, obj)
            return
        if oi is not None:
            for sub_id, preds in self._osp.get(oi, {}).items():
                sub = term(sub_id)
                for pred_id in preds:
                    yield _triple(sub, term(pred_id), o)
            return
        yield from self

    def count(
        self,
        s: Subject | None = None,
        p: IRI | None = None,
        o: Object | None = None,
    ) -> int:
        """Count triples matching the pattern without materializing them."""
        if s is None and p is None and o is None:
            return self._size
        lookup = self._terms.lookup
        si = pi = oi = None
        if s is not None:
            si = lookup(s)
            if si is None:
                return 0
        if p is not None:
            pi = lookup(p)
            if pi is None:
                return 0
        if o is not None:
            oi = lookup(o)
            if oi is None:
                return 0
        if si is not None and pi is not None and oi is None:
            return len(self._spo.get(si, {}).get(pi, ()))
        if si is None and pi is not None and oi is not None:
            return len(self._pos.get(pi, {}).get(oi, ()))
        if si is not None and pi is None and oi is None:
            return sum(len(objs) for objs in self._spo.get(si, {}).values())
        if si is None and pi is None and oi is not None:
            return sum(len(preds) for preds in self._osp.get(oi, {}).values())
        if si is not None and pi is None and oi is not None:
            return len(self._osp.get(oi, {}).get(si, ()))
        if si is None and pi is not None and oi is None:
            return self._p_count.get(pi, 0)
        return sum(1 for _ in self.triples(s, p, o))

    def objects(self, s: Subject, p: IRI) -> Iterator[Object]:
        """Yield all objects ``o`` with ``(s, p, o)`` in the graph."""
        yield from self._decode_bucket(self._spo, s, p)

    def subjects(self, p: IRI, o: Object) -> Iterator[Subject]:
        """Yield all subjects ``s`` with ``(s, p, o)`` in the graph."""
        yield from self._decode_bucket(self._pos, p, o)

    def _decode_bucket(self, index: dict, k1, k2) -> Iterator:
        lookup = self._terms.lookup
        i1 = lookup(k1)
        if i1 is None:
            return
        i2 = lookup(k2)
        if i2 is None:
            return
        bucket = index.get(i1, {}).get(i2)
        if bucket is None:
            return
        term = self._terms.term
        for i in bucket:
            yield term(i)

    def value(self, s: Subject, p: IRI) -> Object | None:
        """Return an arbitrary single object of ``(s, p, ·)``, or None."""
        for o in self.objects(s, p):
            return o
        return None

    def predicates_of(self, s: Subject) -> Iterator[IRI]:
        """Yield the distinct predicates attached to subject ``s``."""
        si = self._terms.lookup(s)
        if si is None:
            return
        term = self._terms.term
        for pi in self._spo.get(si, ()):
            yield term(pi)

    def subject_set(self) -> set[Subject]:
        """The set of all subjects."""
        term = self._terms.term
        return {term(i) for i in self._spo}

    def predicate_set(self) -> set[IRI]:
        """The set of all predicates (the set ``P`` of Definition 2.1)."""
        term = self._terms.term
        return {term(i) for i in self._pos}

    def object_set(self) -> set[Object]:
        """The set of all objects."""
        term = self._terms.term
        return {term(i) for i in self._osp}

    # ------------------------------------------------------------------ #
    # Planner statistics (all O(1), incrementally maintained)
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Mutation counter; changes on every add/remove/clear."""
        return self._version

    def predicate_count(self, p: IRI) -> int:
        """Number of triples with predicate ``p``."""
        pi = self._terms.lookup(p)
        return self._p_count.get(pi, 0) if pi is not None else 0

    def predicate_distinct_subjects(self, p: IRI) -> int:
        """Number of distinct subjects occurring with predicate ``p``."""
        pi = self._terms.lookup(p)
        return self._p_subjects.get(pi, 0) if pi is not None else 0

    def predicate_distinct_objects(self, p: IRI) -> int:
        """Number of distinct objects occurring with predicate ``p``."""
        pi = self._terms.lookup(p)
        return len(self._pos.get(pi, ())) if pi is not None else 0

    def n_subjects(self) -> int:
        """Number of distinct subjects."""
        return len(self._spo)

    def n_predicates(self) -> int:
        """Number of distinct predicates."""
        return len(self._pos)

    def n_objects(self) -> int:
        """Number of distinct objects."""
        return len(self._osp)

    # ------------------------------------------------------------------ #
    # Typing helpers (the `a` predicate of Definition 2.1)
    # ------------------------------------------------------------------ #

    def types_of(self, entity: Subject) -> set[IRI]:
        """All classes ``c`` with ``(entity, rdf:type, c)`` in the graph."""
        return {o for o in self.objects(entity, _RDF_TYPE) if isinstance(o, IRI)}

    def instances_of(self, cls: IRI) -> Iterator[Subject]:
        """All entities typed with ``cls``."""
        yield from self.subjects(_RDF_TYPE, cls)

    def classes(self) -> set[IRI]:
        """The set ``C``: IRIs used as an object of ``rdf:type`` or in
        ``rdfs:subClassOf`` statements (Definition 2.1)."""
        term = self._terms.term
        ti = self._terms.lookup(_RDF_TYPE)
        result: set[IRI] = set()
        if ti is not None:
            result = {
                o for o in (term(oi) for oi in self._pos.get(ti, ())) if isinstance(o, IRI)
            }
        for t in self.triples(p=_SUBCLASS_OF):
            if isinstance(t.s, IRI):
                result.add(t.s)
            if isinstance(t.o, IRI):
                result.add(t.o)
        return result

    def superclasses(self, cls: IRI) -> set[IRI]:
        """Transitive closure of ``rdfs:subClassOf`` starting at ``cls``
        (excluding ``cls`` itself)."""
        seen: set[IRI] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for o in self.objects(current, _SUBCLASS_OF):
                if isinstance(o, IRI) and o not in seen:
                    seen.add(o)
                    frontier.append(o)
        return seen

    def is_instance_of(self, entity: Subject, cls: IRI) -> bool:
        """True when ``entity`` is typed with ``cls`` or a subclass of it."""
        types = self.types_of(entity)
        if cls in types:
            return True
        return any(cls in self.superclasses(t) for t in types)

    # ------------------------------------------------------------------ #
    # Set algebra (used by the evolution / monotonicity experiments)
    # ------------------------------------------------------------------ #

    def union(self, other: "Graph") -> "Graph":
        """A new graph containing the triples of both operands."""
        result = Graph(self)
        result.update(other)
        return result

    def difference(self, other: "Graph") -> "Graph":
        """A new graph with the triples of ``self`` not in ``other``."""
        return Graph(t for t in self if t not in other)

    def intersection(self, other: "Graph") -> "Graph":
        """A new graph with the triples present in both operands."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph(t for t in small if t in large)

    def copy(self) -> "Graph":
        """A shallow copy (terms are immutable, so this is a full snapshot)."""
        return Graph(self)

    def __or__(self, other: "Graph") -> "Graph":
        return self.union(other)

    def __sub__(self, other: "Graph") -> "Graph":
        return self.difference(other)

    def __and__(self, other: "Graph") -> "Graph":
        return self.intersection(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def __hash__(self):  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and unhashable")

    def __repr__(self) -> str:
        return f"<Graph with {self._size} triples>"

    # ------------------------------------------------------------------ #
    # Statistics (Table 2)
    # ------------------------------------------------------------------ #

    def stats(self) -> GraphStats:
        """Compute the dataset characteristics reported in Table 2."""
        term = self._terms.term
        n_literals = sum(1 for oi in self._osp if isinstance(term(oi), Literal))
        ti = self._terms.lookup(_RDF_TYPE)
        instances: set[int] = set()
        if ti is not None:
            for subs in self._pos.get(ti, {}).values():
                instances.update(subs)
        size_bytes = sum(len(t.n3()) + 1 for t in self)
        return GraphStats(
            n_triples=self._size,
            n_subjects=len(self._spo),
            n_objects=len(self._osp),
            n_literals=n_literals,
            n_instances=len(instances),
            n_classes=len(self.classes()),
            n_properties=len(self._pos),
            size_bytes=size_bytes,
        )

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_triples(cls, triples: Iterable[tuple[Subject, IRI, Object]]) -> "Graph":
        """Build a graph from raw ``(s, p, o)`` tuples."""
        g = cls()
        for s, p, o in triples:
            g.add(Triple(s, p, o))
        return g

    def isomorphic_signature(self) -> frozenset[str]:
        """A canonical signature treating blank-node labels as opaque.

        Two graphs that differ only in blank-node labels map to the same
        signature, which is what the information-preservation check
        (Proposition 4.1) needs. Blank nodes are canonicalized by the
        multiset of their ground neighbourhood, iterated to a fixpoint
        (a simple colour-refinement).  Each round's colour is *hashed*
        to a fixed size — colours embed their neighbours' colours, so
        raw strings would grow exponentially on interlinked blank nodes
        — and refinement stops once the induced partition of blank
        nodes stabilizes (raw colour values keep churning forever on
        blank-node cycles).  Hashes are content-derived, so isomorphic
        graphs refine through identical colour sequences.
        """
        colour: dict[BlankNode, str] = {}
        bnodes = [
            n for n in self.subject_set() | self.object_set() if isinstance(n, BlankNode)
        ]
        for b in bnodes:
            colour[b] = "b"

        def partition(colours: dict[BlankNode, str]) -> frozenset[frozenset[BlankNode]]:
            classes: dict[str, set[BlankNode]] = {}
            for node, value in colours.items():
                classes.setdefault(value, set()).add(node)
            return frozenset(frozenset(members) for members in classes.values())

        for _ in range(max(1, len(bnodes))):
            new_colour: dict[BlankNode, str] = {}
            for b in bnodes:
                parts = []
                for t in self.triples(s=b):
                    o_key = colour.get(t.o, t.o.n3()) if isinstance(t.o, BlankNode) else t.o.n3()
                    parts.append(f">{t.p.value}:{o_key}")
                for t in self.triples(o=b):
                    s_key = colour.get(t.s, t.s.n3()) if isinstance(t.s, BlankNode) else t.s.n3()
                    parts.append(f"<{t.p.value}:{s_key}")
                raw = "|".join(sorted(parts))
                new_colour[b] = hashlib.blake2b(
                    raw.encode("utf-8"), digest_size=8
                ).hexdigest()
            stable = partition(new_colour) == partition(colour)
            colour = new_colour
            if stable:
                break
        lines = []
        for t in self:
            s_key = colour.get(t.s, None) if isinstance(t.s, BlankNode) else None
            o_key = colour.get(t.o, None) if isinstance(t.o, BlankNode) else None
            s_repr = f"_:{s_key}" if s_key is not None else t.s.n3()
            o_repr = f"_:{o_key}" if o_key is not None else t.o.n3()
            lines.append(f"{s_repr} {t.p.n3()} {o_repr}")
        return frozenset(lines)


def graphs_equal_modulo_bnodes(a: Graph, b: Graph) -> bool:
    """True when the two graphs are isomorphic up to blank-node renaming."""
    if len(a) != len(b):
        return False
    return a.isomorphic_signature() == b.isomorphic_signature()
