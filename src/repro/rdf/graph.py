"""An in-memory indexed RDF triple store.

The :class:`Graph` maintains three permutation indexes (SPO, POS, OSP), the
standard layout for in-memory RDF stores, so that any triple pattern with
fixed terms can be answered without a full scan.  This is the substrate on
which shape extraction, SHACL validation, the S3PG data transformation
(Algorithm 1), and the SPARQL engine all run.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..errors import GraphError
from ..namespaces import RDF_TYPE, RDFS
from .terms import IRI, BlankNode, Literal, Object, Subject, Triple, is_literal

_SUBCLASS_OF = IRI(RDFS.subClassOf)


@dataclass(frozen=True)
class GraphStats:
    """Dataset characteristics as reported in Table 2 of the paper."""

    n_triples: int
    n_subjects: int
    n_objects: int
    n_literals: int
    n_instances: int
    n_classes: int
    n_properties: int
    size_bytes: int

    def as_row(self) -> dict[str, int]:
        """Return the statistics as a plain dict (one table row)."""
        return {
            "# of triples": self.n_triples,
            "# of objects": self.n_objects,
            "# of subjects": self.n_subjects,
            "# of literals": self.n_literals,
            "# of instances": self.n_instances,
            "# of classes": self.n_classes,
            "# of properties": self.n_properties,
            "size in bytes": self.size_bytes,
        }


class Graph:
    """A set of RDF triples with SPO/POS/OSP indexes.

    The store behaves like a set of :class:`Triple` objects: adding a
    duplicate triple is a no-op, iteration yields each triple once, and the
    usual set algebra (union / difference) is available for computing and
    applying deltas between graph snapshots.

    Examples:
        >>> g = Graph()
        >>> alice = IRI("http://example.org/alice")
        >>> _ = g.add(Triple(alice, IRI(RDF_TYPE), IRI("http://example.org/Person")))
        >>> len(g)
        1
    """

    def __init__(self, triples: Iterable[Triple] | None = None):
        # spo[s][p] -> set of o ; pos[p][o] -> set of s ; osp[o][s] -> set of p
        self._spo: dict[Subject, dict[IRI, set[Object]]] = {}
        self._pos: dict[IRI, dict[Object, set[Subject]]] = {}
        self._osp: dict[Object, dict[Subject, set[IRI]]] = {}
        self._size = 0
        # Incrementally maintained statistics for the query planner:
        # triples per predicate and distinct subjects per predicate.  Both
        # are O(1) dict updates on add/remove; distinct *objects* per
        # predicate need no counter (len of the POS bucket).
        self._p_count: dict[IRI, int] = {}
        self._p_subjects: dict[IRI, int] = {}
        #: Monotonic mutation counter (plan/statistics cache invalidation).
        self._version = 0
        if triples is not None:
            for t in triples:
                self.add(t)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; return True when it was not already present."""
        s, p, o = triple.s, triple.p, triple.o
        by_p = self._spo.setdefault(s, {})
        objs = by_p.setdefault(p, set())
        if o in objs:
            return False
        new_pair = not objs
        objs.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        self._version += 1
        self._p_count[p] = self._p_count.get(p, 0) + 1
        if new_pair:
            self._p_subjects[p] = self._p_subjects.get(p, 0) + 1
        return True

    def add_triple(self, s: Subject, p: IRI, o: Object) -> bool:
        """Convenience wrapper building the :class:`Triple` for the caller."""
        return self.add(Triple(s, p, o))

    def remove(self, triple: Triple) -> bool:
        """Delete ``triple``; return True when it was present."""
        s, p, o = triple.s, triple.p, triple.o
        objs = self._spo.get(s, {}).get(p)
        if objs is None or o not in objs:
            return False
        objs.discard(o)
        if not objs:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
            remaining_subjects = self._p_subjects[p] - 1
            if remaining_subjects:
                self._p_subjects[p] = remaining_subjects
            else:
                del self._p_subjects[p]
        subs = self._pos[p][o]
        subs.discard(s)
        if not subs:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        preds = self._osp[o][s]
        preds.discard(p)
        if not preds:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        self._version += 1
        remaining = self._p_count[p] - 1
        if remaining:
            self._p_count[p] = remaining
        else:
            del self._p_count[p]
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def discard_all(self, triples: Iterable[Triple]) -> int:
        """Remove many triples; return the number actually removed."""
        return sum(1 for t in triples if self.remove(t))

    def clear(self) -> None:
        """Remove every triple."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._p_count.clear()
        self._p_subjects.clear()
        self._size = 0
        self._version += 1

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, triple: Triple) -> bool:
        return triple.o in self._spo.get(triple.s, {}).get(triple.p, ())

    def __iter__(self) -> Iterator[Triple]:
        # Bypass Triple.__init__ validation: every stored term was already
        # validated on insertion, and iteration is the hottest path of the
        # streaming transformation (the graph is scanned twice per run).
        new = Triple.__new__
        setattr_ = object.__setattr__
        for s, by_p in self._spo.items():
            for p, objs in by_p.items():
                for o in objs:
                    t = new(Triple)
                    setattr_(t, "s", s)
                    setattr_(t, "p", p)
                    setattr_(t, "o", o)
                    yield t

    def triples(
        self,
        s: Subject | None = None,
        p: IRI | None = None,
        o: Object | None = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern; ``None`` is a wildcard.

        The best index for the bound positions is chosen automatically.
        """
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objs = by_p.get(p)
                if objs is None:
                    return
                if o is not None:
                    if o in objs:
                        yield Triple(s, p, o)
                    return
                for obj in objs:
                    yield Triple(s, p, obj)
                return
            if o is not None:
                preds = self._osp.get(o, {}).get(s)
                if preds is None:
                    return
                for pred in preds:
                    yield Triple(s, pred, o)
                return
            for pred, objs in by_p.items():
                for obj in objs:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                for sub in by_o.get(o, ()):
                    yield Triple(sub, p, o)
                return
            for obj, subs in by_o.items():
                for sub in subs:
                    yield Triple(sub, p, obj)
            return
        if o is not None:
            for sub, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(sub, pred, o)
            return
        yield from self

    def count(
        self,
        s: Subject | None = None,
        p: IRI | None = None,
        o: Object | None = None,
    ) -> int:
        """Count triples matching the pattern without materializing them."""
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if s is None and p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is None and o is None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if s is None and p is None and o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        if s is not None and p is None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        return sum(1 for _ in self.triples(s, p, o))

    def objects(self, s: Subject, p: IRI) -> Iterator[Object]:
        """Yield all objects ``o`` with ``(s, p, o)`` in the graph."""
        yield from self._spo.get(s, {}).get(p, ())

    def subjects(self, p: IRI, o: Object) -> Iterator[Subject]:
        """Yield all subjects ``s`` with ``(s, p, o)`` in the graph."""
        yield from self._pos.get(p, {}).get(o, ())

    def value(self, s: Subject, p: IRI) -> Object | None:
        """Return an arbitrary single object of ``(s, p, ·)``, or None."""
        for o in self.objects(s, p):
            return o
        return None

    def predicates_of(self, s: Subject) -> Iterator[IRI]:
        """Yield the distinct predicates attached to subject ``s``."""
        yield from self._spo.get(s, {})

    def subject_set(self) -> set[Subject]:
        """The set of all subjects."""
        return set(self._spo)

    def predicate_set(self) -> set[IRI]:
        """The set of all predicates (the set ``P`` of Definition 2.1)."""
        return set(self._pos)

    def object_set(self) -> set[Object]:
        """The set of all objects."""
        return set(self._osp)

    # ------------------------------------------------------------------ #
    # Planner statistics (all O(1), incrementally maintained)
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Mutation counter; changes on every add/remove/clear."""
        return self._version

    def predicate_count(self, p: IRI) -> int:
        """Number of triples with predicate ``p``."""
        return self._p_count.get(p, 0)

    def predicate_distinct_subjects(self, p: IRI) -> int:
        """Number of distinct subjects occurring with predicate ``p``."""
        return self._p_subjects.get(p, 0)

    def predicate_distinct_objects(self, p: IRI) -> int:
        """Number of distinct objects occurring with predicate ``p``."""
        return len(self._pos.get(p, ()))

    def n_subjects(self) -> int:
        """Number of distinct subjects."""
        return len(self._spo)

    def n_predicates(self) -> int:
        """Number of distinct predicates."""
        return len(self._pos)

    def n_objects(self) -> int:
        """Number of distinct objects."""
        return len(self._osp)

    # ------------------------------------------------------------------ #
    # Typing helpers (the `a` predicate of Definition 2.1)
    # ------------------------------------------------------------------ #

    def types_of(self, entity: Subject) -> set[IRI]:
        """All classes ``c`` with ``(entity, rdf:type, c)`` in the graph."""
        return {
            o for o in self._spo.get(entity, {}).get(IRI(RDF_TYPE), ())
            if isinstance(o, IRI)
        }

    def instances_of(self, cls: IRI) -> Iterator[Subject]:
        """All entities typed with ``cls``."""
        yield from self._pos.get(IRI(RDF_TYPE), {}).get(cls, ())

    def classes(self) -> set[IRI]:
        """The set ``C``: IRIs used as an object of ``rdf:type`` or in
        ``rdfs:subClassOf`` statements (Definition 2.1)."""
        result: set[IRI] = {
            o for o in self._pos.get(IRI(RDF_TYPE), ()) if isinstance(o, IRI)
        }
        for t in self.triples(p=_SUBCLASS_OF):
            if isinstance(t.s, IRI):
                result.add(t.s)
            if isinstance(t.o, IRI):
                result.add(t.o)
        return result

    def superclasses(self, cls: IRI) -> set[IRI]:
        """Transitive closure of ``rdfs:subClassOf`` starting at ``cls``
        (excluding ``cls`` itself)."""
        seen: set[IRI] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for o in self.objects(current, _SUBCLASS_OF):
                if isinstance(o, IRI) and o not in seen:
                    seen.add(o)
                    frontier.append(o)
        return seen

    def is_instance_of(self, entity: Subject, cls: IRI) -> bool:
        """True when ``entity`` is typed with ``cls`` or a subclass of it."""
        types = self.types_of(entity)
        if cls in types:
            return True
        return any(cls in self.superclasses(t) for t in types)

    # ------------------------------------------------------------------ #
    # Set algebra (used by the evolution / monotonicity experiments)
    # ------------------------------------------------------------------ #

    def union(self, other: "Graph") -> "Graph":
        """A new graph containing the triples of both operands."""
        result = Graph(self)
        result.update(other)
        return result

    def difference(self, other: "Graph") -> "Graph":
        """A new graph with the triples of ``self`` not in ``other``."""
        return Graph(t for t in self if t not in other)

    def intersection(self, other: "Graph") -> "Graph":
        """A new graph with the triples present in both operands."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph(t for t in small if t in large)

    def copy(self) -> "Graph":
        """A shallow copy (terms are immutable, so this is a full snapshot)."""
        return Graph(self)

    def __or__(self, other: "Graph") -> "Graph":
        return self.union(other)

    def __sub__(self, other: "Graph") -> "Graph":
        return self.difference(other)

    def __and__(self, other: "Graph") -> "Graph":
        return self.intersection(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def __hash__(self):  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and unhashable")

    def __repr__(self) -> str:
        return f"<Graph with {self._size} triples>"

    # ------------------------------------------------------------------ #
    # Statistics (Table 2)
    # ------------------------------------------------------------------ #

    def stats(self) -> GraphStats:
        """Compute the dataset characteristics reported in Table 2."""
        literals = {o for o in self._osp if is_literal(o)}
        type_pred = IRI(RDF_TYPE)
        instances: set[Subject] = set()
        for subs in self._pos.get(type_pred, {}).values():
            instances.update(subs)
        size_bytes = sum(len(t.n3()) + 1 for t in self)
        return GraphStats(
            n_triples=self._size,
            n_subjects=len(self._spo),
            n_objects=len(self._osp),
            n_literals=len(literals),
            n_instances=len(instances),
            n_classes=len(self.classes()),
            n_properties=len(self._pos),
            size_bytes=size_bytes,
        )

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_triples(cls, triples: Iterable[tuple[Subject, IRI, Object]]) -> "Graph":
        """Build a graph from raw ``(s, p, o)`` tuples."""
        g = cls()
        for s, p, o in triples:
            g.add(Triple(s, p, o))
        return g

    def isomorphic_signature(self) -> frozenset[str]:
        """A canonical signature treating blank-node labels as opaque.

        Two graphs that differ only in blank-node labels map to the same
        signature, which is what the information-preservation check
        (Proposition 4.1) needs. Blank nodes are canonicalized by the
        multiset of their ground neighbourhood, iterated to a fixpoint
        (a simple colour-refinement).  Each round's colour is *hashed*
        to a fixed size — colours embed their neighbours' colours, so
        raw strings would grow exponentially on interlinked blank nodes
        — and refinement stops once the induced partition of blank
        nodes stabilizes (raw colour values keep churning forever on
        blank-node cycles).  Hashes are content-derived, so isomorphic
        graphs refine through identical colour sequences.
        """
        colour: dict[BlankNode, str] = {}
        bnodes = [n for n in set(self._spo) | set(self._osp) if isinstance(n, BlankNode)]
        for b in bnodes:
            colour[b] = "b"

        def partition(colours: dict[BlankNode, str]) -> frozenset[frozenset[BlankNode]]:
            classes: dict[str, set[BlankNode]] = {}
            for node, value in colours.items():
                classes.setdefault(value, set()).add(node)
            return frozenset(frozenset(members) for members in classes.values())

        for _ in range(max(1, len(bnodes))):
            new_colour: dict[BlankNode, str] = {}
            for b in bnodes:
                parts = []
                for t in self.triples(s=b):
                    o_key = colour.get(t.o, t.o.n3()) if isinstance(t.o, BlankNode) else t.o.n3()
                    parts.append(f">{t.p.value}:{o_key}")
                for t in self.triples(o=b):
                    s_key = colour.get(t.s, t.s.n3()) if isinstance(t.s, BlankNode) else t.s.n3()
                    parts.append(f"<{t.p.value}:{s_key}")
                raw = "|".join(sorted(parts))
                new_colour[b] = hashlib.blake2b(
                    raw.encode("utf-8"), digest_size=8
                ).hexdigest()
            stable = partition(new_colour) == partition(colour)
            colour = new_colour
            if stable:
                break
        lines = []
        for t in self:
            s_key = colour.get(t.s, None) if isinstance(t.s, BlankNode) else None
            o_key = colour.get(t.o, None) if isinstance(t.o, BlankNode) else None
            s_repr = f"_:{s_key}" if s_key is not None else t.s.n3()
            o_repr = f"_:{o_key}" if o_key is not None else t.o.n3()
            lines.append(f"{s_repr} {t.p.n3()} {o_repr}")
        return frozenset(lines)


def graphs_equal_modulo_bnodes(a: Graph, b: Graph) -> bool:
    """True when the two graphs are isomorphic up to blank-node renaming."""
    if len(a) != len(b):
        return False
    return a.isomorphic_signature() == b.isomorphic_signature()
