"""RDF substrate: terms, indexed triple store, and serializations.

Public entry points::

    from repro.rdf import IRI, BlankNode, Literal, Triple, Graph
    from repro.rdf import parse_ntriples, serialize_ntriples
    from repro.rdf import parse_turtle, serialize_turtle
"""

from .graph import Graph, GraphStats, graphs_equal_modulo_bnodes
from .namespace import PrefixMap
from .ntriples import (
    iter_ntriples,
    parse_ntriples,
    serialize_ntriples,
    write_ntriples,
)
from .terms import (
    IRI,
    BlankNode,
    Literal,
    Object,
    Subject,
    Term,
    Triple,
    is_blank,
    is_iri,
    is_literal,
)
from .turtle import TurtleParser, parse_turtle, rdf_list_items, serialize_turtle

__all__ = [
    "IRI",
    "BlankNode",
    "Literal",
    "Triple",
    "Term",
    "Subject",
    "Object",
    "Graph",
    "GraphStats",
    "PrefixMap",
    "TurtleParser",
    "graphs_equal_modulo_bnodes",
    "is_blank",
    "is_iri",
    "is_literal",
    "iter_ntriples",
    "parse_ntriples",
    "parse_turtle",
    "rdf_list_items",
    "serialize_ntriples",
    "serialize_turtle",
    "write_ntriples",
]
