"""Prefix management for Turtle parsing/serialization and display.

A :class:`PrefixMap` maps short prefixes (``xsd``, ``dbp``, ...) to base
IRIs and supports both expansion (``qname -> IRI``) and compaction
(``IRI -> qname``), preferring the longest matching base on compaction.
"""

from __future__ import annotations

from ..errors import ParseError
from ..namespaces import WELL_KNOWN_PREFIXES


class PrefixMap:
    """A bidirectional prefix <-> namespace table.

    Examples:
        >>> pm = PrefixMap.with_defaults()
        >>> pm.expand("xsd:string")
        'http://www.w3.org/2001/XMLSchema#string'
        >>> pm.compact("http://www.w3.org/2001/XMLSchema#string")
        'xsd:string'
    """

    def __init__(self, mapping: dict[str, str] | None = None):
        self._forward: dict[str, str] = {}
        if mapping:
            for prefix, base in mapping.items():
                self.bind(prefix, base)

    @classmethod
    def with_defaults(cls) -> "PrefixMap":
        """A prefix map preloaded with the library's well-known prefixes."""
        return cls(dict(WELL_KNOWN_PREFIXES))

    def bind(self, prefix: str, base: str) -> None:
        """Associate ``prefix`` with namespace ``base`` (rebinding allowed)."""
        self._forward[prefix] = base

    def namespaces(self) -> dict[str, str]:
        """A copy of the current prefix table."""
        return dict(self._forward)

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._forward

    def expand(self, qname: str) -> str:
        """Expand ``prefix:local`` to a full IRI.

        Raises:
            ParseError: when the prefix is unknown or the input has no colon.
        """
        prefix, sep, local = qname.partition(":")
        if not sep:
            raise ParseError(f"not a qualified name: {qname!r}")
        base = self._forward.get(prefix)
        if base is None:
            raise ParseError(f"unknown prefix {prefix!r} in {qname!r}")
        return base + local

    def compact(self, iri: str) -> str:
        """Compact a full IRI to ``prefix:local`` when possible.

        Falls back to returning the IRI unchanged if no bound namespace is a
        prefix of it, or if the local part would contain characters that are
        not valid in a Turtle local name.
        """
        best_prefix = None
        best_base = ""
        for prefix, base in self._forward.items():
            if iri.startswith(base) and len(base) > len(best_base):
                best_prefix, best_base = prefix, base
        if best_prefix is None:
            return iri
        local = iri[len(best_base):]
        if not local or not _is_valid_local(local):
            return iri
        return f"{best_prefix}:{local}"

    def __repr__(self) -> str:
        return f"PrefixMap({len(self._forward)} prefixes)"


def _is_valid_local(local: str) -> bool:
    """A conservative check for Turtle PN_LOCAL validity."""
    if local[0] in ".-":
        return False
    return all(ch.isalnum() or ch in "_-." for ch in local) and not local.endswith(".")
