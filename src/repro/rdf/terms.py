"""RDF term model: IRIs, blank nodes, literals, and triples.

Implements the vocabulary of Definition 2.1 in the paper: pairwise disjoint
sets of IRIs ``I``, blank nodes ``B``, and literals ``L``.  All terms are
immutable, hashable value objects, so they can be used freely as dictionary
keys inside the indexed triple store.
"""

from __future__ import annotations

import itertools
import re
from typing import Union

from ..errors import TermError
from ..namespaces import XSD

# --------------------------------------------------------------------- #
# N-Triples escaping
#
# The parser (ntriples._unescape / _codepoint) rejects out-of-range and
# surrogate \u/\U escapes, and the line splitter breaks on *every*
# ``str.splitlines`` boundary — \x0b \x0c \x1c \x1d \x1e \x85 \u2028
# \u2029, not just \n and \r.  Serialization must therefore (a) escape
# every control and line-separator character so no literal or IRI can
# split a statement, (b) escape backslashes in IRIs (the parser
# unescapes \uXXXX inside IRIs, so a raw backslash is ambiguous), and
# (c) never emit lone surrogates — they cannot be escaped (the parser
# rejects surrogate escapes, per RDF's scalar-value-only string model)
# nor UTF-8 encoded, so they are replaced with U+FFFD.
# --------------------------------------------------------------------- #

_LITERAL_ESCAPES: dict[int, str] = {
    0x22: '\\"',
    0x5C: "\\\\",
    0x0A: "\\n",
    0x0D: "\\r",
    0x09: "\\t",
    0x08: "\\b",
    0x0C: "\\f",
}
_IRI_ESCAPES: dict[int, str] = {}
for _cp in (*range(0x00, 0x20), 0x7F, 0x85, 0x2028, 0x2029):
    _LITERAL_ESCAPES.setdefault(_cp, f"\\u{_cp:04X}")
    _IRI_ESCAPES[_cp] = f"\\u{_cp:04X}"
# Characters the N-Triples grammar forbids unescaped inside <...>.
for _cp in map(ord, '\\"^`{|}'):
    _IRI_ESCAPES[_cp] = f"\\u{_cp:04X}"
for _cp in range(0xD800, 0xE000):
    _LITERAL_ESCAPES[_cp] = "\uFFFD"
    _IRI_ESCAPES[_cp] = "\uFFFD"
del _cp

#: Fast path: most strings contain nothing that needs escaping.
_LITERAL_DIRTY = re.compile(r'[\x00-\x1f"\\\x7f\x85\u2028\u2029\ud800-\udfff]')
_IRI_DIRTY = re.compile(r'[\x00-\x1f"\\^`{|}\x7f\x85\u2028\u2029\ud800-\udfff]')


def _escape_literal(text: str) -> str:
    """Escape a literal's lexical form for N-Triples output."""
    if _LITERAL_DIRTY.search(text) is None:
        return text
    return text.translate(_LITERAL_ESCAPES)


def _escape_iri(text: str) -> str:
    """Escape an IRI's value for N-Triples output inside ``<...>``."""
    if _IRI_DIRTY.search(text) is None:
        return text
    return text.translate(_IRI_ESCAPES)


class IRI:
    """A global identifier (member of the set ``I`` in Definition 2.1).

    Compares equal by value, so two ``IRI`` objects with the same string are
    interchangeable.

    Examples:
        >>> IRI("http://example.org/alice")
        IRI('http://example.org/alice')
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not isinstance(value, str) or not value:
            raise TermError(f"IRI value must be a non-empty string, got {value!r}")
        if any(ch in value for ch in " \n\t\r<>"):
            raise TermError(f"IRI contains forbidden characters: {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IRI objects are immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        # Interned terms are hashed constantly (dictionary encoding,
        # planner catalogs); cache the hash on first use.
        try:
            return self._hash
        except AttributeError:
            h = hash((IRI, self.value))
            object.__setattr__(self, "_hash", h)
            return h

    def __reduce__(self):
        return (IRI, (self.value,))

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """Render in N-Triples syntax: ``<iri>`` (escaped)."""
        return f"<{_escape_iri(self.value)}>"


class BlankNode:
    """An anonymous node (member of the set ``B`` in Definition 2.1).

    Blank nodes are identified by a local label.  Labels are only meaningful
    within a single graph/document.

    Examples:
        >>> BlankNode("b0")
        BlankNode('b0')
        >>> BlankNode() != BlankNode()  # fresh labels are unique
        True
    """

    __slots__ = ("label", "_hash")

    _counter = itertools.count()

    def __init__(self, label: str | None = None):
        if label is None:
            label = f"gen{next(BlankNode._counter)}"
        if not isinstance(label, str) or not label:
            raise TermError(f"blank node label must be a non-empty string, got {label!r}")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BlankNode objects are immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and other.label == self.label

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((BlankNode, self.label))
            object.__setattr__(self, "_hash", h)
            return h

    def __reduce__(self):
        return (BlankNode, (self.label,))

    def __repr__(self) -> str:
        return f"BlankNode({self.label!r})"

    def __str__(self) -> str:
        return f"_:{self.label}"

    def n3(self) -> str:
        """Render in N-Triples syntax: ``_:label``."""
        return f"_:{self.label}"


class Literal:
    """A typed (optionally language-tagged) literal value.

    The lexical form is kept verbatim; :meth:`to_python` converts to a native
    Python value based on the XSD datatype.

    Args:
        lexical: the lexical form, e.g. ``"42"``.
        datatype: full datatype IRI string; defaults to ``xsd:string``
            (or ``rdf:langString`` when a ``language`` tag is given).
        language: BCP-47 language tag, e.g. ``"en"``.

    Examples:
        >>> Literal("42", XSD.integer).to_python()
        42
        >>> Literal("hi", language="en").language
        'en'
    """

    __slots__ = ("lexical", "datatype", "language", "_hash")

    LANG_STRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

    def __init__(self, lexical: str, datatype: str | None = None, language: str | None = None):
        if not isinstance(lexical, str):
            raise TermError(f"literal lexical form must be a string, got {lexical!r}")
        if language is not None:
            if datatype is not None and datatype != self.LANG_STRING:
                raise TermError("a language-tagged literal must have datatype rdf:langString")
            datatype = self.LANG_STRING
        elif datatype is None:
            datatype = XSD.string
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal objects are immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((Literal, self.lexical, self.datatype, self.language))
            object.__setattr__(self, "_hash", h)
            return h

    def __reduce__(self):
        if self.language is not None:
            return (Literal, (self.lexical, None, self.language))
        return (Literal, (self.lexical, self.datatype))

    def __repr__(self) -> str:
        if self.language is not None:
            return f"Literal({self.lexical!r}, language={self.language!r})"
        if self.datatype == XSD.string:
            return f"Literal({self.lexical!r})"
        return f"Literal({self.lexical!r}, {self.datatype!r})"

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        """Render in N-Triples syntax with escaping, type, and language tag."""
        escaped = _escape_literal(self.lexical)
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        if self.datatype == XSD.string:
            return f'"{escaped}"'
        return f'"{escaped}"^^<{_escape_iri(self.datatype)}>'

    def to_python(self) -> object:
        """Convert to a native Python value according to the XSD datatype.

        Unknown datatypes and malformed lexical forms fall back to the raw
        string, matching the lenient behaviour of common RDF toolkits.
        """
        dt = self.datatype
        try:
            if dt in (XSD.integer, XSD.int, XSD.long, XSD.short, XSD.byte,
                      XSD.nonNegativeInteger, XSD.positiveInteger,
                      XSD.negativeInteger, XSD.nonPositiveInteger,
                      XSD.unsignedInt, XSD.unsignedLong):
                return int(self.lexical)
            if dt in (XSD.decimal, XSD.double, XSD.float):
                return float(self.lexical)
            if dt == XSD.boolean:
                if self.lexical in ("true", "1"):
                    return True
                if self.lexical in ("false", "0"):
                    return False
                return self.lexical
        except ValueError:
            return self.lexical
        return self.lexical


#: A subject may be an IRI or a blank node.
Subject = Union[IRI, BlankNode]
#: An object may be an IRI, blank node, or literal.
Object = Union[IRI, BlankNode, Literal]
#: Any RDF term.
Term = Union[IRI, BlankNode, Literal]


class Triple:
    """An ``<s, p, o>`` statement (an edge of the RDF graph, Definition 2.1).

    Supports tuple-style unpacking::

        s, p, o = triple
    """

    __slots__ = ("s", "p", "o", "_hash")

    def __init__(self, s: Subject, p: IRI, o: Object):
        if not isinstance(s, (IRI, BlankNode)):
            raise TermError(f"triple subject must be an IRI or blank node, got {s!r}")
        if not isinstance(p, IRI):
            raise TermError(f"triple predicate must be an IRI, got {p!r}")
        if not isinstance(o, (IRI, BlankNode, Literal)):
            raise TermError(f"triple object must be an RDF term, got {o!r}")
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "o", o)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Triple objects are immutable")

    def __iter__(self):
        return iter((self.s, self.p, self.o))

    def __getitem__(self, index: int) -> Term:
        return (self.s, self.p, self.o)[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Triple)
            and other.s == self.s
            and other.p == self.p
            and other.o == self.o
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((Triple, self.s, self.p, self.o))
            object.__setattr__(self, "_hash", h)
            return h

    def __reduce__(self):
        return (Triple, (self.s, self.p, self.o))

    def __repr__(self) -> str:
        return f"Triple({self.s!r}, {self.p!r}, {self.o!r})"

    def n3(self) -> str:
        """Render as an N-Triples statement (without the trailing newline)."""
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()} ."


def is_literal(term: object) -> bool:
    """True when ``term`` is a :class:`Literal`."""
    return isinstance(term, Literal)


def is_iri(term: object) -> bool:
    """True when ``term`` is an :class:`IRI`."""
    return isinstance(term, IRI)


def is_blank(term: object) -> bool:
    """True when ``term`` is a :class:`BlankNode`."""
    return isinstance(term, BlankNode)
