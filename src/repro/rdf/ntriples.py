"""N-Triples parser and serializer.

N-Triples is the line-oriented RDF serialization used for the streaming
data-transformation pipeline (Algorithm 1 reads the input graph "triple by
triple" from a file), so this parser is written as a generator that never
holds more than one line in memory.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..errors import ParseError, TermError
from .graph import Graph
from .terms import IRI, BlankNode, Literal, Object, Subject, Triple

_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "b": "\b",
    "f": "\f",
    "'": "'",
}


class _LineParser:
    """A cursor over a single N-Triples line."""

    def __init__(self, line: str, lineno: int):
        self.line = line
        self.pos = 0
        self.lineno = lineno

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.lineno, column=self.pos + 1)

    def skip_ws(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def peek(self) -> str:
        return self.line[self.pos] if self.pos < len(self.line) else ""

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(f"expected {ch!r}, found {self.peek()!r}")
        self.pos += 1

    def parse_iri(self) -> IRI:
        self.expect("<")
        end = self.line.find(">", self.pos)
        if end == -1:
            raise self.error("unterminated IRI")
        value = self.line[self.pos:end]
        self.pos = end + 1
        try:
            return IRI(_unescape(value, self))
        except TermError as exc:
            raise self.error(str(exc)) from exc

    def parse_bnode(self) -> BlankNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.line) and (
            self.line[self.pos].isalnum() or self.line[self.pos] in "_-."
        ):
            self.pos += 1
        # A label may contain '.' but must not end with one: a trailing
        # dot is the statement terminator (whitespace before '.' is
        # optional), as in ``<s> <p> _:b.``.
        while self.pos > start and self.line[self.pos - 1] == ".":
            self.pos -= 1
        label = self.line[start:self.pos]
        if not label:
            raise self.error("empty blank node label")
        return BlankNode(label)

    def parse_literal(self) -> Literal:
        self.expect('"')
        chars: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal")
            ch = self.line[self.pos]
            self.pos += 1
            if ch == '"':
                break
            if ch == "\\":
                if self.at_end():
                    raise self.error("dangling escape")
                esc = self.line[self.pos]
                self.pos += 1
                if esc in _ESCAPES:
                    chars.append(_ESCAPES[esc])
                elif esc == "u":
                    chars.append(self._read_unicode(4))
                elif esc == "U":
                    chars.append(self._read_unicode(8))
                else:
                    raise self.error(f"invalid escape sequence \\{esc}")
            else:
                chars.append(ch)
        lexical = "".join(chars)
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.line) and (
                self.line[self.pos].isalnum() or self.line[self.pos] == "-"
            ):
                self.pos += 1
            tag = self.line[start:self.pos]
            if not tag:
                raise self.error("empty language tag")
            return Literal(lexical, language=tag)
        if self.line.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.parse_iri()
            return Literal(lexical, datatype.value)
        return Literal(lexical)

    def _read_unicode(self, width: int) -> str:
        hexdigits = self.line[self.pos:self.pos + width]
        if len(hexdigits) != width:
            raise self.error("truncated unicode escape")
        try:
            code = int(hexdigits, 16)
        except ValueError as exc:
            raise self.error(f"invalid unicode escape {hexdigits!r}") from exc
        self.pos += width
        return _codepoint(code, hexdigits, self)

    def parse_subject(self) -> Subject:
        ch = self.peek()
        if ch == "<":
            return self.parse_iri()
        if ch == "_":
            return self.parse_bnode()
        raise self.error(f"invalid subject start {ch!r}")

    def parse_object(self) -> Object:
        ch = self.peek()
        if ch == "<":
            return self.parse_iri()
        if ch == "_":
            return self.parse_bnode()
        if ch == '"':
            return self.parse_literal()
        raise self.error(f"invalid object start {ch!r}")


def _codepoint(code: int, hexdigits: str, parser: _LineParser) -> str:
    """Map an escape's code point to a character, rejecting values outside
    the Unicode range and surrogates (both crash ``chr()`` or produce
    strings that cannot be encoded back to UTF-8)."""
    if code > 0x10FFFF or 0xD800 <= code <= 0xDFFF:
        raise parser.error(f"unicode escape out of range \\{hexdigits}")
    return chr(code)


def _unescape(value: str, parser: _LineParser) -> str:
    """Resolve ``\\uXXXX`` / ``\\UXXXXXXXX`` escapes inside an IRI."""
    if "\\" not in value:
        return value
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value) and value[i + 1] in "uU":
            width = 4 if value[i + 1] == "u" else 8
            hexdigits = value[i + 2:i + 2 + width]
            if len(hexdigits) != width:
                raise parser.error("truncated unicode escape in IRI")
            try:
                code = int(hexdigits, 16)
            except ValueError as exc:
                raise parser.error(
                    f"invalid unicode escape {hexdigits!r} in IRI"
                ) from exc
            out.append(_codepoint(code, hexdigits, parser))
            i += 2 + width
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_line(line: str, lineno: int = 1) -> Triple | None:
    """Parse one N-Triples line; return None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parser = _LineParser(stripped, lineno)
    s = parser.parse_subject()
    parser.skip_ws()
    if parser.peek() != "<":
        raise parser.error("predicate must be an IRI")
    p = parser.parse_iri()
    parser.skip_ws()
    o = parser.parse_object()
    parser.skip_ws()
    parser.expect(".")
    parser.skip_ws()
    if not parser.at_end():
        raise parser.error("trailing content after '.'")
    return Triple(s, p, o)


def iter_ntriples(source: str | Path | io.TextIOBase) -> Iterator[Triple]:
    """Stream triples from an N-Triples document.

    Args:
        source: a path, an open text file, or the document text itself
            (a string containing a newline or starting with a term marker).
    """
    if isinstance(source, io.TextIOBase):
        lines: Iterable[str] = source
    elif isinstance(source, Path):
        with source.open("r", encoding="utf-8") as handle:
            yield from iter_ntriples(handle)
            return
    elif isinstance(source, str) and ("\n" in source or source.lstrip()[:1] in ("<", "_", "#", "")):
        lines = source.splitlines()
    else:
        with open(source, "r", encoding="utf-8") as handle:
            yield from iter_ntriples(handle)
            return
    for lineno, line in enumerate(lines, start=1):
        triple = parse_line(line, lineno)
        if triple is not None:
            yield triple


def parse_ntriples(source: str | Path | io.TextIOBase) -> Graph:
    """Parse a complete N-Triples document into a :class:`Graph`."""
    from .. import obs

    with obs.span("rdf.parse_ntriples") as span:
        graph = Graph(iter_ntriples(source))
        span.set("triples", len(graph))
    obs.get_metrics().counter(
        "repro_parse_triples_total", help="RDF triples parsed"
    ).inc(len(graph), format="ntriples")
    return graph


def serialize_ntriples(triples: Iterable[Triple], sort: bool = False) -> str:
    """Serialize triples as an N-Triples document.

    Args:
        triples: any iterable of triples (a :class:`Graph` works).
        sort: emit statements in lexicographic order for stable output.
    """
    lines = [t.n3() for t in triples]
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def write_ntriples(triples: Iterable[Triple], path: str | Path) -> int:
    """Write triples to ``path`` in N-Triples format; return the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for t in triples:
            handle.write(t.n3())
            handle.write("\n")
            count += 1
    return count
