"""Test package."""
