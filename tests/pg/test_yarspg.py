"""Round-trip tests for the YARS-PG serialization."""

import pytest

from repro.errors import ParseError
from repro.pg import PropertyGraph, export_yarspg, import_yarspg


def build_graph() -> PropertyGraph:
    g = PropertyGraph()
    g.add_node("n1", labels={"Person", "Student"},
               properties={"name": "Alice", "age": 30})
    g.add_node("n2", labels={"Course"}, properties={"title": "DB: intro"})
    g.add_edge("n1", "n2", labels={"takes"}, properties={"term": "S1"})
    return g


def test_round_trip_structure():
    g = build_graph()
    again = import_yarspg(export_yarspg(g))
    assert again.node_count() == 2
    assert again.edge_count() == 1
    assert again.get_node("n1").labels == {"Person", "Student"}
    assert again.get_node("n1").properties["age"] == 30


def test_edge_properties_round_trip():
    again = import_yarspg(export_yarspg(build_graph()))
    edge = next(iter(again.edges.values()))
    assert edge.properties["term"] == "S1"
    assert edge.labels == {"takes"}


def test_header_comment_present():
    assert export_yarspg(build_graph()).startswith("# YARS-PG")


def test_special_characters_in_values():
    g = PropertyGraph()
    g.add_node("n", labels={"T"}, properties={"text": 'quote " and colon:'})
    again = import_yarspg(export_yarspg(g))
    assert again.get_node("n").properties["text"] == 'quote " and colon:'


def test_propertyless_node():
    g = PropertyGraph()
    g.add_node("n", labels={"T"})
    again = import_yarspg(export_yarspg(g))
    assert again.get_node("n").properties == {}


def test_invalid_statement_raises():
    with pytest.raises(ParseError):
        import_yarspg("not a yarspg statement\n")


def test_invalid_property_list_raises():
    with pytest.raises(ParseError):
        import_yarspg('("n" {"T"} [broken])\n')


def test_comments_and_blank_lines_ignored():
    text = export_yarspg(build_graph()) + "\n# trailing comment\n\n"
    assert import_yarspg(text).node_count() == 2
