"""Round-trip tests for the Neo4j-style bulk CSV serialization."""

import pytest

from repro.errors import GraphError
from repro.pg import PropertyGraph, export_csv, import_csv, read_csv, write_csv


def build_graph() -> PropertyGraph:
    g = PropertyGraph()
    g.add_node("a", labels={"Person"}, properties={
        "iri": "http://x/a", "name": "Ann, the 1st", "age": 30,
        "scores": [1, 2, 3], "active": True,
    })
    g.add_node("b", labels={"Person", "Student"}, properties={"iri": "http://x/b"})
    g.add_node("c", labels=set(), properties={"weight": 2.5})
    g.add_edge("a", "b", labels={"knows"}, properties={"since": 2020}, edge_id="e1")
    g.add_edge("b", "c", labels={"likes"}, edge_id="e2")
    return g


def test_round_trip_structurally_equal():
    g = build_graph()
    nodes_csv, edges_csv = export_csv(g)
    again = import_csv(nodes_csv, edges_csv)
    assert g.structurally_equal(again)


def test_headers_follow_neo4j_convention():
    nodes_csv, edges_csv = export_csv(build_graph())
    assert nodes_csv.splitlines()[0].startswith("id:ID,:LABEL")
    assert edges_csv.splitlines()[0].startswith("id,:START_ID,:END_ID,:TYPE")


def test_array_encoding_uses_semicolons():
    nodes_csv, _ = export_csv(build_graph())
    assert "1;2;3;" in nodes_csv


def test_booleans_round_trip():
    g = build_graph()
    again = import_csv(*export_csv(g))
    assert again.get_node("a").properties["active"] is True


def test_numbers_round_trip_with_types():
    again = import_csv(*export_csv(build_graph()))
    assert again.get_node("a").properties["age"] == 30
    assert again.get_node("c").properties["weight"] == 2.5


def test_commas_in_values_survive():
    again = import_csv(*export_csv(build_graph()))
    assert again.get_node("a").properties["name"] == "Ann, the 1st"


def test_multi_labels_round_trip():
    again = import_csv(*export_csv(build_graph()))
    assert again.get_node("b").labels == {"Person", "Student"}


def test_invalid_node_header_raises():
    with pytest.raises(GraphError):
        import_csv("wrong,header\n", "id,:START_ID,:END_ID,:TYPE\n")


def test_invalid_edge_header_raises():
    with pytest.raises(GraphError):
        import_csv("id:ID,:LABEL\n", "bad,header,x,y\n")


def test_file_round_trip(tmp_path):
    g = build_graph()
    nodes_path, edges_path = write_csv(g, tmp_path / "out")
    assert nodes_path.exists() and edges_path.exists()
    assert read_csv(tmp_path / "out").structurally_equal(g)


def test_empty_graph_round_trip():
    g = PropertyGraph()
    assert import_csv(*export_csv(g)).node_count() == 0


class TestSeparatorEscaping:
    """Values containing the ';' array separator must round-trip."""

    def test_scalar_ending_with_separator(self):
        g = PropertyGraph()
        g.add_node("n", properties={"v": "ends-with;"})
        again = import_csv(*export_csv(g))
        assert again.get_node("n").properties["v"] == "ends-with;"

    def test_array_values_containing_separator(self):
        g = PropertyGraph()
        g.add_node("n", properties={"arr": ["a;b", "c"]})
        again = import_csv(*export_csv(g))
        assert again.get_node("n").properties["arr"] == ["a;b", "c"]

    def test_backslashes_round_trip(self):
        g = PropertyGraph()
        g.add_node("n", properties={"v": "back\\slash;x", "w": "\\"})
        again = import_csv(*export_csv(g))
        assert again.structurally_equal(g)

    def test_bare_separator_value(self):
        g = PropertyGraph()
        g.add_node("n", properties={"v": ";"})
        again = import_csv(*export_csv(g))
        assert again.get_node("n").properties["v"] == ";"

    def test_empty_string_values_survive(self):
        g = PropertyGraph()
        g.add_node("n", properties={"v": "", "arr": ["", "x"]})
        again = import_csv(*export_csv(g))
        assert again.get_node("n").properties["v"] == ""
        assert again.get_node("n").properties["arr"] == ["", "x"]

    def test_literal_backslash_e_survives(self):
        g = PropertyGraph()
        g.add_node("n", properties={"v": "\\e"})
        again = import_csv(*export_csv(g))
        assert again.get_node("n").properties["v"] == "\\e"

    def test_numeric_looking_strings_keep_type(self):
        g = PropertyGraph()
        g.add_node("n", properties={
            "s_int": "12", "s_bool": "true", "s_float": "3.5",
            "i": 12, "b": True, "f": 3.5,
        })
        again = import_csv(*export_csv(g))
        assert g.structurally_equal(again)
        props = again.get_node("n").properties
        assert props["s_int"] == "12" and props["i"] == 12
        assert props["s_bool"] == "true" and props["b"] is True


def test_empty_array_round_trips():
    g = PropertyGraph()
    g.add_node("n", properties={"empty": [], "one": [""], "two": ["", ""]})
    again = import_csv(*export_csv(g))
    props = again.get_node("n").properties
    assert props["empty"] == []
    assert props["one"] == [""]
    assert props["two"] == ["", ""]
    assert g.structurally_equal(again)


def test_empty_array_distinct_from_marker_string():
    g = PropertyGraph()
    g.add_node("n", properties={"arr": [], "text": "\\a", "boxed": ["\\a"]})
    again = import_csv(*export_csv(g))
    props = again.get_node("n").properties
    assert props["arr"] == []
    assert props["text"] == "\\a"
    assert props["boxed"] == ["\\a"]
