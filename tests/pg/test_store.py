"""Unit tests for the indexed property-graph store."""

import pytest

from repro.pg import PropertyGraph, PropertyGraphStore


@pytest.fixture
def store() -> PropertyGraphStore:
    s = PropertyGraphStore()
    s.add_node("a", labels={"Person"}, properties={"iri": "http://x/a", "age": 30})
    s.add_node("b", labels={"Person", "Student"}, properties={"iri": "http://x/b"})
    s.add_node("c", labels={"Course"}, properties={"iri": "http://x/c"})
    s.add_edge("a", "b", labels={"knows"})
    s.add_edge("b", "c", labels={"takes"})
    s.add_edge("a", "c", labels={"teaches"})
    return s


class TestLabelIndex:
    def test_nodes_with_label(self, store):
        assert {n.id for n in store.nodes_with_label("Person")} == {"a", "b"}

    def test_count_label(self, store):
        assert store.count_label("Person") == 2
        assert store.count_label("Robot") == 0

    def test_add_label_updates_index(self, store):
        store.add_label("c", "Archived")
        assert {n.id for n in store.nodes_with_label("Archived")} == {"c"}


class TestPropertyIndex:
    def test_indexed_lookup(self, store):
        assert store.node_by_property("iri", "http://x/a").id == "a"

    def test_indexed_lookup_miss(self, store):
        assert store.node_by_property("iri", "http://x/none") is None

    def test_unindexed_key_falls_back_to_scan(self, store):
        assert [n.id for n in store.nodes_by_property("age", 30)] == ["a"]

    def test_set_node_property_keeps_index_fresh(self, store):
        store.set_node_property("a", "iri", "http://x/a2")
        assert store.node_by_property("iri", "http://x/a") is None
        assert store.node_by_property("iri", "http://x/a2").id == "a"


class TestAdjacency:
    def test_out_edges_by_type(self, store):
        assert [e.dst for e in store.out_edges("a", "knows")] == ["b"]

    def test_out_edges_all_types(self, store):
        assert {e.dst for e in store.out_edges("a")} == {"b", "c"}

    def test_in_edges_by_type(self, store):
        assert [e.src for e in store.in_edges("c", "takes")] == ["b"]

    def test_in_edges_all_types(self, store):
        assert {e.src for e in store.in_edges("c")} == {"a", "b"}

    def test_unknown_node_has_no_edges(self, store):
        assert list(store.out_edges("zzz")) == []

    def test_degree(self, store):
        assert store.degree("a") == 2
        assert store.degree("a", "knows") == 1

    def test_edges_with_type(self, store):
        assert sum(1 for _ in store.edges_with_type("knows")) == 1


class TestBulkLoad:
    def test_bulk_load_replaces_and_reindexes(self, store):
        fresh = PropertyGraph()
        fresh.add_node("x", labels={"Thing"}, properties={"iri": "http://x/x"})
        store.bulk_load(fresh)
        assert store.count_label("Person") == 0
        assert store.node_by_property("iri", "http://x/x").id == "x"

    def test_rebuild_indexes_after_manual_mutation(self, store):
        store.graph.get_node("a").labels.add("Admin")
        assert store.count_label("Admin") == 0  # index is stale
        store.rebuild_indexes()
        assert store.count_label("Admin") == 1

    def test_warm_up_visits_everything(self, store):
        assert store.warm_up() == store.graph.node_count() + store.graph.edge_count()

    def test_constructor_indexes_existing_graph(self):
        pg = PropertyGraph()
        pg.add_node("n", labels={"L"}, properties={"iri": "u"})
        store = PropertyGraphStore(pg)
        assert store.count_label("L") == 1
        assert store.node_by_property("iri", "u").id == "n"
