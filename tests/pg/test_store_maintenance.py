"""Incremental index/statistics maintenance of :class:`PropertyGraphStore`.

Every mutating method must leave the store indistinguishable from a
freshly indexed store over the same graph — the planner's statistics
catalog depends on it.  The tests compare mutated stores against
``rebuild_indexes()`` snapshots, both for scripted edits and for a
seeded random mutation workload, and check that the SPARQL statistics
counters of :class:`~repro.rdf.graph.Graph` stay exact as well.
"""

from __future__ import annotations

import random

import pytest

from repro.pg.model import PropertyGraph
from repro.pg.store import PropertyGraphStore
from repro.query.plan import GraphCatalog, StoreCatalog
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Triple


def _index_snapshot(store: PropertyGraphStore):
    """Order-insensitive view of every index and statistic.

    Uses the public ``catalog_snapshot`` so the comparison is independent
    of the store's internal dictionary encoding (interned ids depend on
    mutation history; the decoded snapshot must not).
    """
    return store.catalog_snapshot()


def _assert_fresh(store: PropertyGraphStore):
    """The incrementally maintained indexes match a from-scratch build."""
    fresh = PropertyGraphStore(store.graph, store.indexed_keys)
    assert _index_snapshot(store) == _index_snapshot(fresh)
    assert store.catalog_discrepancies() == []


def _sample_store() -> PropertyGraphStore:
    store = PropertyGraphStore()
    a = store.add_node("a", ["Person"], {"iri": "ex:a", "name": "ada"})
    b = store.add_node("b", ["Person", "Student"], {"iri": "ex:b"})
    c = store.add_node("c", ["Dept"], {"iri": "ex:c"})
    store.add_edge(a.id, b.id, ["knows"], edge_id="e1")
    store.add_edge(b.id, c.id, ["memberOf"], edge_id="e2")
    store.add_edge(a.id, c.id, ["memberOf"], edge_id="e3")
    store.add_edge(a.id, a.id, ["knows"], edge_id="loop")
    return store


def test_remove_edge_matches_rebuild():
    store = _sample_store()
    store.remove_edge("e2")
    store.remove_edge("loop")
    _assert_fresh(store)
    assert store.rel_type_count("memberOf") == 1
    assert store.rel_type_count("knows") == 1


def test_remove_node_drops_incident_edges():
    store = _sample_store()
    store.remove_node("a")  # takes e1, e3 and the self-loop with it
    _assert_fresh(store)
    assert store.node_count() == 2
    assert store.edge_count() == 1
    assert store.rel_type_count("knows") == 0
    assert list(store.nodes_by_property("iri", "ex:a")) == []


def test_property_mutation_moves_index_bucket():
    store = _sample_store()
    store.set_node_property("a", "iri", "ex:a2")
    _assert_fresh(store)
    assert store.property_hits("iri", "ex:a") == 0
    assert store.property_hits("iri", "ex:a2") == 1
    # Non-scalar values leave the index (list-valued property).
    store.set_node_property("a", "iri", ["x", "y"])
    _assert_fresh(store)
    assert store.property_hits("iri", "ex:a2") == 0


def test_add_label_updates_label_index():
    store = _sample_store()
    store.add_label("c", "Organisation")
    _assert_fresh(store)
    assert {n.id for n in store.nodes_with_label("Organisation")} == {"c"}


def test_merge_from_reindexes():
    store = _sample_store()
    other = PropertyGraph()
    d = other.add_node("d", ["Dept"], {"iri": "ex:d"})
    e = other.add_node("a", ["Person"], {"iri": "ex:a", "age": 41})
    other.add_edge(e.id, d.id, ["memberOf"], edge_id="e4")
    version_before = store.version
    store.merge_from(other)
    _assert_fresh(store)
    assert store.version > version_before
    assert store.rel_type_count("memberOf") == 3
    assert {n.id for n in store.nodes_with_label("Dept")} == {"c", "d"}


def test_mutations_bump_version():
    store = _sample_store()
    seen = {store.version}
    store.add_node("x", ["Person"], {"iri": "ex:x"})
    seen.add(store.version)
    store.add_edge("x", "c", ["memberOf"], edge_id="e9")
    seen.add(store.version)
    store.set_node_property("x", "iri", "ex:x2")
    seen.add(store.version)
    store.remove_edge("e9")
    seen.add(store.version)
    store.remove_node("x")
    seen.add(store.version)
    assert len(seen) == 6  # strictly monotone: each mutation invalidates plans


def test_random_mutation_workload_stays_fresh():
    rng = random.Random(2024)
    store = PropertyGraphStore()
    node_ids: list[str] = []
    edge_ids: list[str] = []
    labels = ["Person", "Student", "Dept", "Course"]
    rels = ["knows", "memberOf", "takes"]
    for step in range(400):
        action = rng.random()
        if action < 0.35 or len(node_ids) < 2:
            node = store.add_node(
                f"n{step}", [rng.choice(labels)], {"iri": f"ex:{step}"}
            )
            node_ids.append(node.id)
        elif action < 0.65:
            edge = store.add_edge(
                rng.choice(node_ids), rng.choice(node_ids),
                [rng.choice(rels)], edge_id=f"e{step}",
            )
            edge_ids.append(edge.id)
        elif action < 0.75 and edge_ids:
            store.remove_edge(edge_ids.pop(rng.randrange(len(edge_ids))))
        elif action < 0.85 and node_ids:
            victim = node_ids.pop(rng.randrange(len(node_ids)))
            store.remove_node(victim)
            edge_ids = [e for e in edge_ids if e in store.graph.edges]
        elif node_ids:
            store.set_node_property(
                rng.choice(node_ids), "iri", f"ex:moved-{step}"
            )
    _assert_fresh(store)


# --------------------------------------------------------------------- #
# Statistics catalogs stay exact under mutation
# --------------------------------------------------------------------- #

def test_store_catalog_tracks_mutations():
    store = _sample_store()
    catalog = StoreCatalog(store)
    assert catalog.node_count() == 3
    assert catalog.edge_count() == 4
    version = catalog.version
    store.remove_node("a")
    assert catalog.version != version  # plan cache key changes
    assert catalog.node_count() == 2
    assert catalog.edge_count() == 1


def test_graph_statistics_match_recount():
    ex = "http://example.org/"
    rng = random.Random(7)
    graph = Graph()
    predicates = [IRI(f"{ex}p{i}") for i in range(4)]
    subjects = [IRI(f"{ex}s{i}") for i in range(6)]
    triples = []
    for _ in range(200):
        t = Triple(
            rng.choice(subjects), rng.choice(predicates),
            rng.choice(subjects + [Literal(str(rng.randrange(5)))]),
        )
        graph.add(t)
        triples.append(t)
    rng.shuffle(triples)
    for t in triples[:120]:
        graph.remove(t)
    for p in predicates:
        expected = {t for t in graph if t.p == p}
        assert graph.predicate_count(p) == len(expected)
        assert graph.predicate_distinct_subjects(p) == len(
            {t.s for t in expected}
        )
        assert graph.predicate_distinct_objects(p) == len(
            {t.o for t in expected}
        )


def test_randomized_counter_workload_matches_recount():
    """Counters survive duplicate adds, re-adds after remove, and
    ``update`` overlap: after a randomized workload every maintained
    statistic equals a full recount of the surviving triples."""
    ex = "http://example.org/"
    rng = random.Random(20240731)
    graph = Graph()
    predicates = [IRI(f"{ex}p{i}") for i in range(5)]
    subjects = [IRI(f"{ex}s{i}") for i in range(8)]
    objects = subjects + [Literal(str(i)) for i in range(6)]
    pool = [
        Triple(rng.choice(subjects), rng.choice(predicates), rng.choice(objects))
        for _ in range(150)
    ]
    for step in range(1200):
        action = rng.random()
        t = rng.choice(pool)
        if action < 0.45:
            graph.add(t)
        elif action < 0.55:
            graph.add(t)
            graph.add(t)  # duplicate add must not bump anything twice
        elif action < 0.8:
            graph.remove(t)
        elif action < 0.9:
            graph.remove(t)
            graph.add(t)  # re-add after remove restores exactly one count
        else:
            # Bulk update with overlap: some triples already present.
            graph.update(rng.sample(pool, rng.randrange(1, 10)))

    live = list(graph)
    assert len(graph) == len(set(live)) == len(live)
    by_p: dict[IRI, set[Triple]] = {}
    for t in live:
        by_p.setdefault(t.p, set()).add(t)
    for p in predicates:
        expected = by_p.get(p, set())
        assert graph.predicate_count(p) == len(expected)
        assert graph.predicate_distinct_subjects(p) == len({t.s for t in expected})
        assert graph.predicate_distinct_objects(p) == len({t.o for t in expected})
    assert graph.n_subjects() == len({t.s for t in live})
    assert graph.n_predicates() == len({t.p for t in live})
    assert graph.n_objects() == len({t.o for t in live})


def test_store_counters_survive_duplicate_and_readd_cycles():
    """Rel-type/label counters under re-adds, removes, and merge overlap."""
    store = _sample_store()
    # Re-add after remove: counter returns to exactly its old value.
    store.remove_edge("e1")
    store.add_edge("a", "b", ["knows"], edge_id="e1")
    assert store.rel_type_count("knows") == 2
    # Duplicate label adds are idempotent in the index.
    store.add_label("a", "Person")
    store.add_label("a", "Person")
    assert sum(1 for n in store.nodes_with_label("Person") if n.id == "a") == 1
    # Merge overlap: shared nodes/edges must not double-count.
    other = PropertyGraph()
    other.add_node("a", ["Person"], {"iri": "ex:a"})
    other.add_node("b", ["Person"], {"iri": "ex:b"})
    other.add_edge("a", "b", ["knows"], edge_id="e1")
    store.merge_from(other)
    assert store.rel_type_count("knows") == 2
    _assert_fresh(store)


def test_graph_catalog_estimates_follow_mutations():
    ex = "http://example.org/"
    graph = Graph()
    p = IRI(f"{ex}p")
    for i in range(10):
        graph.add(Triple(IRI(f"{ex}s{i % 2}"), p, Literal(str(i))))
    catalog = GraphCatalog(graph)
    version = catalog.version
    from repro.query.sparql.ast import TriplePattern, Var

    pattern = TriplePattern(Var("s"), p, Var("o"))
    assert catalog.estimate_pattern(pattern, set()) == 10.0
    graph.remove(Triple(IRI(f"{ex}s0"), p, Literal("0")))
    assert catalog.version != version
    assert catalog.estimate_pattern(pattern, set()) == 9.0
    # Bound subject: triples-per-distinct-subject uniformity estimate.
    assert catalog.estimate_pattern(pattern, {"s"}) == pytest.approx(9 / 2)
