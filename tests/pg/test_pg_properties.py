"""Property-based tests for property-graph serializations."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pg import PropertyGraph, export_csv, export_yarspg, import_csv, import_yarspg

_IDENT = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=6)
_LABEL = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)
_KEY = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_TEXT = st.text(
    alphabet=string.ascii_letters + string.digits + ' ;,\\.:"\'-_&é',
    max_size=16,
)
_SCALAR = st.one_of(
    _TEXT,
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(
        lambda f: round(f, 3)
    ),
)
_VALUE = st.one_of(_SCALAR, st.lists(_SCALAR, min_size=1, max_size=4))


@st.composite
def property_graphs(draw) -> PropertyGraph:
    graph = PropertyGraph()
    node_ids = draw(st.lists(_IDENT, min_size=1, max_size=6, unique=True))
    for node_id in node_ids:
        labels = draw(st.sets(_LABEL, max_size=3))
        properties = draw(st.dictionaries(_KEY, _VALUE, max_size=4))
        graph.add_node(node_id, labels=labels, properties=properties)
    n_edges = draw(st.integers(min_value=0, max_value=8))
    for index in range(n_edges):
        src = draw(st.sampled_from(node_ids))
        dst = draw(st.sampled_from(node_ids))
        label = draw(_LABEL)
        properties = draw(st.dictionaries(_KEY, _SCALAR, max_size=2))
        graph.add_edge(src, dst, labels={label}, properties=properties,
                       edge_id=f"edge{index}")
    return graph


@given(property_graphs())
@settings(max_examples=60, deadline=None)
def test_csv_round_trip(graph):
    """import(export(PG)) is structurally identical for arbitrary graphs."""
    again = import_csv(*export_csv(graph))
    assert graph.structurally_equal(again)


@given(property_graphs())
@settings(max_examples=40, deadline=None)
def test_yarspg_round_trip_counts(graph):
    """YARS-PG round trip preserves node/edge structure."""
    again = import_yarspg(export_yarspg(graph))
    assert again.node_count() == graph.node_count()
    assert again.edge_count() == graph.edge_count()
    for node_id, node in graph.nodes.items():
        other = again.get_node(node_id)
        assert other.labels == node.labels
        assert other.properties == node.properties
