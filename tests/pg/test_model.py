"""Unit tests for the property-graph model (Definition 2.4)."""

import pytest

from repro.errors import GraphError
from repro.pg import PGEdge, PGNode, PropertyGraph


@pytest.fixture
def pg() -> PropertyGraph:
    g = PropertyGraph()
    g.add_node("a", labels={"Person"}, properties={"name": "Ann", "iri": "http://x/a"})
    g.add_node("b", labels={"Person", "Student"}, properties={"iri": "http://x/b"})
    g.add_node("c", labels=set())
    g.add_edge("a", "b", labels={"knows"}, edge_id="e1")
    g.add_edge("b", "c", labels={"likes"}, edge_id="e2")
    return g


class TestNodes:
    def test_add_and_get(self, pg):
        assert pg.get_node("a").properties["name"] == "Ann"

    def test_duplicate_id_rejected(self, pg):
        with pytest.raises(GraphError):
            pg.add_node("a")

    def test_id_shared_with_edge_rejected(self, pg):
        with pytest.raises(GraphError):
            pg.add_node("e1")

    def test_get_missing_raises(self, pg):
        with pytest.raises(GraphError):
            pg.get_node("zzz")

    def test_has_node(self, pg):
        assert pg.has_node("a") and not pg.has_node("zzz")

    def test_auto_id_generation(self):
        g = PropertyGraph()
        n1, n2 = g.add_node(), g.add_node()
        assert n1.id != n2.id

    def test_multi_labels(self, pg):
        assert pg.get_node("b").labels == {"Person", "Student"}

    def test_empty_label_set_allowed(self, pg):
        assert pg.get_node("c").labels == set()

    def test_remove_node_cascades_edges(self, pg):
        pg.remove_node("b")
        assert not pg.has_node("b")
        assert "e1" not in pg.edges and "e2" not in pg.edges

    def test_remove_isolated_node(self, pg):
        pg.add_node("lonely")
        pg.remove_isolated_node("lonely")
        assert not pg.has_node("lonely")

    def test_remove_missing_raises(self, pg):
        with pytest.raises(GraphError):
            pg.remove_node("zzz")


class TestProperties:
    def test_set_property_scalar_types(self):
        node = PGNode(id="n")
        for value in ("s", 1, 2.5, True):
            node.set_property("k", value)
            assert node.properties["k"] == value

    def test_set_property_array(self):
        node = PGNode(id="n")
        node.set_property("k", ["a", "b"])
        assert node.properties["k"] == ["a", "b"]

    def test_set_property_rejects_nested_list(self):
        node = PGNode(id="n")
        with pytest.raises(GraphError):
            node.set_property("k", [["nested"]])

    def test_set_property_rejects_dict(self):
        node = PGNode(id="n")
        with pytest.raises(GraphError):
            node.set_property("k", {"no": "dicts"})

    def test_append_property_promotes_scalar_to_array(self):
        node = PGNode(id="n")
        node.append_property("k", "a")
        assert node.properties["k"] == "a"
        node.append_property("k", "b")
        assert node.properties["k"] == ["a", "b"]
        node.append_property("k", "c")
        assert node.properties["k"] == ["a", "b", "c"]

    def test_has_label(self, pg):
        assert pg.get_node("a").has_label("Person")
        assert not pg.get_node("a").has_label("Robot")


class TestEdges:
    def test_add_edge_endpoints_must_exist(self, pg):
        with pytest.raises(GraphError):
            pg.add_edge("a", "zzz")
        with pytest.raises(GraphError):
            pg.add_edge("zzz", "a")

    def test_duplicate_edge_id_rejected(self, pg):
        with pytest.raises(GraphError):
            pg.add_edge("a", "b", edge_id="e1")

    def test_edge_label_accessor(self, pg):
        assert pg.get_edge("e1").label() == "knows"

    def test_unlabelled_edge_label_raises(self):
        edge = PGEdge(id="e", src="a", dst="b")
        with pytest.raises(GraphError):
            edge.label()

    def test_out_edges(self, pg):
        assert [e.id for e in pg.out_edges("a")] == ["e1"]

    def test_in_edges(self, pg):
        assert [e.id for e in pg.in_edges("c")] == ["e2"]

    def test_get_edge_missing_raises(self, pg):
        with pytest.raises(GraphError):
            pg.get_edge("nope")

    def test_edge_properties(self, pg):
        edge = pg.add_edge("a", "c", labels={"rated"}, properties={"stars": 5})
        assert edge.properties["stars"] == 5

    def test_self_loop_allowed(self, pg):
        edge = pg.add_edge("a", "a", labels={"self"})
        assert edge.src == edge.dst == "a"

    def test_parallel_edges_allowed(self, pg):
        pg.add_edge("a", "b", labels={"knows"})
        assert sum(1 for e in pg.out_edges("a") if "knows" in e.labels) == 2


class TestWholeGraph:
    def test_counts(self, pg):
        assert pg.node_count() == 3
        assert pg.edge_count() == 2

    def test_labels_and_rel_types(self, pg):
        assert pg.labels() == {"Person", "Student"}
        assert pg.relationship_types() == {"knows", "likes"}

    def test_nodes_with_label(self, pg):
        assert {n.id for n in pg.nodes_with_label("Person")} == {"a", "b"}

    def test_stats(self, pg):
        stats = pg.stats()
        assert stats.n_nodes == 3
        assert stats.n_edges == 2
        assert stats.n_rel_types == 2
        assert stats.n_node_properties == 3
        row = stats.as_row()
        assert row["# of Nodes"] == 3

    def test_copy_is_deep(self, pg):
        clone = pg.copy()
        clone.get_node("a").properties["name"] = "Changed"
        clone.add_node("new")
        assert pg.get_node("a").properties["name"] == "Ann"
        assert not pg.has_node("new")

    def test_copy_structurally_equal(self, pg):
        assert pg.structurally_equal(pg.copy())


class TestIncidenceIndex:
    def test_incident_edges(self, pg):
        assert {e.id for e in pg.incident_edges("b")} == {"e1", "e2"}

    def test_degree(self, pg):
        assert pg.degree("b") == 2
        assert pg.degree("c") == 1
        pg.add_node("lonely")
        assert pg.degree("lonely") == 0

    def test_self_loop_counts_once(self, pg):
        pg.add_edge("a", "a", labels={"self"}, edge_id="loop")
        assert sum(1 for e in pg.incident_edges("a") if e.id == "loop") == 1

    def test_remove_edge(self, pg):
        pg.remove_edge("e1")
        assert "e1" not in pg.edges
        assert {e.id for e in pg.incident_edges("b")} == {"e2"}
        assert pg.degree("a") == 0

    def test_remove_missing_edge_raises(self, pg):
        with pytest.raises(GraphError):
            pg.remove_edge("zzz")

    def test_remove_node_after_remove_edge(self, pg):
        pg.remove_edge("e1")
        pg.remove_edge("e2")
        pg.remove_node("b")
        assert not pg.has_node("b")

    def test_remove_isolated_node_rejects_connected(self, pg):
        with pytest.raises(GraphError):
            pg.remove_isolated_node("b")

    def test_index_consistent_after_cascade(self, pg):
        pg.remove_node("b")  # cascades e1 and e2
        assert pg.degree("a") == 0 and pg.degree("c") == 0
        pg.add_edge("a", "c", labels={"r"}, edge_id="e3")
        assert {e.id for e in pg.incident_edges("a")} == {"e3"}


class TestMergeFrom:
    def test_disjoint_union(self, pg):
        other = PropertyGraph()
        other.add_node("x")
        other.add_node("y")
        other.add_edge("x", "y", labels={"r"}, edge_id="ex")
        stats = pg.merge_from(other)
        assert stats.nodes_added == 2 and stats.edges_added == 1
        assert stats.conflicts == 0
        assert pg.has_node("x") and "ex" in pg.edges

    def test_pure_union_is_idempotent(self, pg):
        snapshot = pg.copy()
        stats = pg.merge_from(snapshot)
        assert stats.nodes_added == 0 and stats.edges_added == 0
        assert stats.nodes_merged == pg.node_count()
        assert stats.conflicts == 0
        assert pg.structurally_equal(snapshot)

    def test_merges_labels_and_properties(self):
        a, b = PropertyGraph(), PropertyGraph()
        a.add_node("n", labels={"A"}, properties={"p": 1})
        b.add_node("n", labels={"B"}, properties={"q": 2})
        a.merge_from(b)
        node = a.get_node("n")
        assert node.labels == {"A", "B"}
        assert node.properties == {"p": 1, "q": 2}

    def test_array_values_compare_as_multisets(self):
        a, b = PropertyGraph(), PropertyGraph()
        a.add_node("n", properties={"k": ["x", "y"]})
        b.add_node("n", properties={"k": ["y", "x"]})
        stats = a.merge_from(b, strict=True)
        assert stats.conflicts == 0

    def test_conflict_counted_lenient(self):
        a, b = PropertyGraph(), PropertyGraph()
        a.add_node("n", properties={"k": "mine"})
        b.add_node("n", properties={"k": "theirs"})
        stats = a.merge_from(b)
        assert stats.conflicts == 1
        # First writer wins in lenient mode.
        assert a.get_node("n").properties["k"] == "mine"

    def test_conflict_raises_strict(self):
        a, b = PropertyGraph(), PropertyGraph()
        a.add_node("n", properties={"k": "mine"})
        b.add_node("n", properties={"k": "theirs"})
        with pytest.raises(GraphError):
            a.merge_from(b, strict=True)

    def test_edge_endpoint_conflict_raises_strict(self):
        a, b = PropertyGraph(), PropertyGraph()
        for g in (a, b):
            g.add_node("x")
            g.add_node("y")
        a.add_edge("x", "y", labels={"r"}, edge_id="e")
        b.add_edge("y", "x", labels={"r"}, edge_id="e")
        with pytest.raises(GraphError):
            a.merge_from(b, strict=True)
        stats = a.copy().merge_from(b)
        assert stats.conflicts == 1

    def test_merged_edges_update_incidence(self, pg):
        other = PropertyGraph()
        other.add_node("a")
        other.add_node("c")
        other.add_edge("c", "a", labels={"back"}, edge_id="e9")
        pg.merge_from(other)
        assert "e9" in {e.id for e in pg.incident_edges("a")}

    def test_other_graph_unmodified(self, pg):
        other = PropertyGraph()
        other.add_node("n", properties={"k": ["v"]})
        pg.merge_from(other)
        pg.get_node("n").properties["k"].append("w")
        assert other.get_node("n").properties["k"] == ["v"]


class TestCanonicalForm:
    def test_equal_graphs_same_form(self, pg):
        assert pg.canonical_form() == pg.copy().canonical_form()

    def test_array_order_is_irrelevant(self):
        a, b = PropertyGraph(), PropertyGraph()
        a.add_node("n", properties={"k": ["x", "y"]})
        b.add_node("n", properties={"k": ["y", "x"]})
        assert a.structurally_equal(b)

    def test_scalar_vs_singleton_array_differ(self):
        a, b = PropertyGraph(), PropertyGraph()
        a.add_node("n", properties={"k": "x"})
        b.add_node("n", properties={"k": ["x"]})
        # repr-based canonicalization distinguishes 'x' from ['x'].
        assert not a.structurally_equal(b)

    def test_label_difference_detected(self):
        a, b = PropertyGraph(), PropertyGraph()
        a.add_node("n", labels={"A"})
        b.add_node("n", labels={"B"})
        assert not a.structurally_equal(b)

    def test_edge_difference_detected(self):
        a, b = PropertyGraph(), PropertyGraph()
        for g in (a, b):
            g.add_node("x")
            g.add_node("y")
        a.add_edge("x", "y", labels={"r"})
        b.add_edge("y", "x", labels={"r"})
        assert not a.structurally_equal(b)
