"""Test package."""
