"""Tests for the versioned binary snapshot format.

A committed golden file (``golden-v1.snap``) pins the byte-level format:
if an intentional format change breaks it, bump ``SNAPSHOT_VERSION`` and
regenerate via ``python tests/storage/test_snapshot.py``.
"""

import pickle
import struct
from pathlib import Path

import pytest

from repro.errors import SnapshotError
from repro.namespaces import RDF_TYPE, XSD
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, BlankNode, Literal, Triple
from repro.storage import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)

GOLDEN = Path(__file__).parent / "golden-v1.snap"
EX = "http://example.org/"


def golden_graph() -> Graph:
    """A small fixed graph covering every term kind the format stores."""
    g = Graph()
    alice, bob = IRI(f"{EX}alice"), IRI(f"{EX}bob")
    knows, name, age = IRI(f"{EX}knows"), IRI(f"{EX}name"), IRI(f"{EX}age")
    g.add(Triple(alice, IRI(RDF_TYPE), IRI(f"{EX}Person")))
    g.add(Triple(bob, IRI(RDF_TYPE), IRI(f"{EX}Person")))
    g.add(Triple(alice, knows, bob))
    g.add(Triple(bob, knows, alice))
    g.add(Triple(alice, name, Literal("Alice", language="en")))
    g.add(Triple(alice, age, Literal("30", XSD.integer)))
    g.add(Triple(bob, name, Literal('evil "name"\nwith\tescapes  ')))
    g.add(Triple(BlankNode("addr1"), IRI(f"{EX}city"), Literal("Łódź")))
    g.add(Triple(bob, IRI(f"{EX}addr"), BlankNode("addr1")))
    return g


def _graphs_equal(a: Graph, b: Graph) -> bool:
    return set(a) == set(b) and len(a) == len(b)


# --------------------------------------------------------------------- #
# Round trip + canonical bytes
# --------------------------------------------------------------------- #


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "g.snap"
    size = save_snapshot(golden_graph(), path)
    assert size == path.stat().st_size
    loaded = load_snapshot(path)
    assert _graphs_equal(loaded, golden_graph())
    assert loaded.version == golden_graph().version


def test_counters_survive_round_trip(tmp_path):
    graph = golden_graph()
    path = tmp_path / "g.snap"
    save_snapshot(graph, path)
    loaded = load_snapshot(path)
    knows = IRI(f"{EX}knows")
    assert loaded.count(p=knows) == graph.count(p=knows)
    assert loaded.stats() == graph.stats()


def test_save_load_save_is_byte_stable(tmp_path):
    first = tmp_path / "a.snap"
    second = tmp_path / "b.snap"
    save_snapshot(golden_graph(), first)
    save_snapshot(load_snapshot(first), second)
    assert first.read_bytes() == second.read_bytes()


def test_golden_file_matches_current_writer(tmp_path):
    path = tmp_path / "g.snap"
    save_snapshot(golden_graph(), path)
    assert path.read_bytes() == GOLDEN.read_bytes(), (
        "snapshot writer output changed; if intentional, bump "
        "SNAPSHOT_VERSION and regenerate the golden file"
    )


def test_golden_file_loads():
    loaded = load_snapshot(GOLDEN)
    assert _graphs_equal(loaded, golden_graph())
    info = snapshot_info(GOLDEN)
    assert info["format_version"] == SNAPSHOT_VERSION
    assert info["n_triples"] == len(golden_graph())
    assert info["file_size"] == GOLDEN.stat().st_size


# --------------------------------------------------------------------- #
# Loaded graphs stay fully mutable and pickleable
# --------------------------------------------------------------------- #


def test_loaded_graph_is_lazy_until_bound_lookup(tmp_path):
    path = tmp_path / "g.snap"
    save_snapshot(golden_graph(), path)
    loaded = load_snapshot(path)
    assert "lazy" in repr(loaded._terms)
    assert Triple(IRI(f"{EX}alice"), IRI(f"{EX}knows"), IRI(f"{EX}bob")) in loaded
    assert "materialized" in repr(loaded._terms)


def test_loaded_graph_mutates_correctly(tmp_path):
    path = tmp_path / "g.snap"
    save_snapshot(golden_graph(), path)
    loaded = load_snapshot(path)
    extra = Triple(IRI(f"{EX}carol"), IRI(f"{EX}knows"), IRI(f"{EX}alice"))
    gone = Triple(IRI(f"{EX}alice"), IRI(f"{EX}knows"), IRI(f"{EX}bob"))
    assert loaded.add(extra)
    assert loaded.remove(gone)
    assert extra in loaded
    assert gone not in loaded
    expected = (set(golden_graph()) | {extra}) - {gone}
    assert set(loaded) == expected
    assert loaded.count(p=IRI(f"{EX}knows")) == 2


def test_loaded_graph_pickles(tmp_path):
    path = tmp_path / "g.snap"
    save_snapshot(golden_graph(), path)
    clone = pickle.loads(pickle.dumps(load_snapshot(path)))
    assert _graphs_equal(clone, golden_graph())
    clone.add(Triple(IRI(f"{EX}new"), IRI(f"{EX}p"), Literal("1")))
    assert len(clone) == len(golden_graph()) + 1


def test_empty_graph_round_trips(tmp_path):
    path = tmp_path / "empty.snap"
    save_snapshot(Graph(), path)
    loaded = load_snapshot(path)
    assert len(loaded) == 0
    assert list(loaded) == []


# --------------------------------------------------------------------- #
# Corruption: every bad file raises SnapshotError, never a wrong graph
# --------------------------------------------------------------------- #


@pytest.fixture()
def snap(tmp_path):
    path = tmp_path / "g.snap"
    save_snapshot(golden_graph(), path)
    return path


def test_missing_file_raises(tmp_path):
    with pytest.raises(SnapshotError, match="cannot open"):
        load_snapshot(tmp_path / "nope.snap")


def test_shorter_than_header_raises(tmp_path):
    path = tmp_path / "tiny.snap"
    path.write_bytes(b"RPRO")
    with pytest.raises(SnapshotError, match="truncated"):
        load_snapshot(path)


def test_bad_magic_raises(snap):
    data = bytearray(snap.read_bytes())
    data[:8] = b"NOTASNAP"
    snap.write_bytes(data)
    with pytest.raises(SnapshotError, match="bad magic"):
        load_snapshot(snap)


def test_wrong_format_version_raises(snap):
    data = bytearray(snap.read_bytes())
    struct.pack_into("<I", data, 8, SNAPSHOT_VERSION + 41)
    snap.write_bytes(data)
    with pytest.raises(SnapshotError, match="unsupported snapshot format version"):
        load_snapshot(snap)


def test_unsupported_flags_raise(snap):
    data = bytearray(snap.read_bytes())
    struct.pack_into("<I", data, 12, 0)
    snap.write_bytes(data)
    with pytest.raises(SnapshotError, match="byte order"):
        load_snapshot(snap)


def test_truncated_file_raises(snap):
    data = snap.read_bytes()
    snap.write_bytes(data[: len(data) - 16])
    with pytest.raises(SnapshotError, match="truncated"):
        load_snapshot(snap)


@pytest.mark.parametrize("offset_from_end", [1, 100, 500])
def test_flipped_payload_byte_raises_crc_error(snap, offset_from_end):
    data = bytearray(snap.read_bytes())
    data[len(data) - offset_from_end] ^= 0xFF
    snap.write_bytes(data)
    with pytest.raises(SnapshotError, match="corrupt"):
        load_snapshot(snap)


def test_snapshot_info_verifies_integrity(snap):
    data = bytearray(snap.read_bytes())
    data[-1] ^= 0xFF
    snap.write_bytes(data)
    with pytest.raises(SnapshotError, match="corrupt"):
        snapshot_info(snap)


def test_magic_constant_is_pinned():
    assert SNAPSHOT_MAGIC == b"RPROSNAP"
    assert SNAPSHOT_VERSION == 1


if __name__ == "__main__":  # golden-file regeneration: PYTHONPATH=src python <this file>
    save_snapshot(golden_graph(), GOLDEN)
    print(f"wrote {GOLDEN} ({GOLDEN.stat().st_size} bytes)")
