"""Tests for the string/term interning dictionaries."""

import pickle

import pytest

from repro.rdf.terms import IRI, BlankNode, Literal
from repro.storage.intern import Interner, TermInterner


class TestInterner:
    def test_ids_are_dense_and_first_appearance_ordered(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0  # idempotent
        assert interner.intern("c") == 2
        assert len(interner) == 3
        assert list(interner) == ["a", "b", "c"]

    def test_decode_is_list_index(self):
        interner = Interner(["x", "y"])
        assert interner.value(0) == "x"
        assert interner.value(1) == "y"
        assert interner.values() == ["x", "y"]

    def test_lookup_does_not_allocate(self):
        interner = Interner()
        interner.intern("present")
        assert interner.lookup("present") == 0
        assert interner.lookup("absent") is None
        assert len(interner) == 1

    def test_seeded_constructor_round_trips(self):
        interner = Interner(["p", "q"])
        assert interner.intern("p") == 0
        assert interner.intern("r") == 2


class _ListSource:
    """A `materialize(i)` source over a fixed term list, counting calls."""

    def __init__(self, terms):
        self.terms = terms
        self.calls = 0

    def materialize(self, i):
        self.calls += 1
        return self.terms[i]


class TestTermInterner:
    def test_eager_intern_and_lookup(self):
        interner = TermInterner()
        a = IRI("http://example.org/a")
        lit = Literal("x", language="en")
        assert interner.intern(a) == 0
        assert interner.intern(lit) == 1
        assert interner.intern(a) == 0
        assert interner.term(1) == lit
        assert interner.lookup(BlankNode("b")) is None
        assert len(interner) == 2

    def test_lazy_decode_is_on_demand(self):
        terms = [IRI("http://example.org/a"), BlankNode("b"), Literal("3")]
        source = _ListSource(terms)
        interner = TermInterner.lazy(source, len(terms))
        assert len(interner) == 3
        assert source.calls == 0
        assert interner.term(2) == Literal("3")
        assert source.calls == 1
        # Repeated access hits the cache, not the source.
        assert interner.term(2) == Literal("3")
        assert source.calls == 1

    def test_first_bound_lookup_materializes_everything(self):
        terms = [IRI("http://example.org/a"), BlankNode("b")]
        source = _ListSource(terms)
        interner = TermInterner.lazy(source, len(terms))
        assert interner.lookup(terms[1]) == 1
        assert source.calls == len(terms)
        # New terms keep allocating dense ids past the snapshot range.
        assert interner.intern(Literal("new")) == 2

    def test_pickle_materializes_and_drops_source(self):
        terms = [IRI("http://example.org/a"), Literal("x", language="en")]
        interner = TermInterner.lazy(_ListSource(terms), len(terms))
        clone = pickle.loads(pickle.dumps(interner))
        assert clone._source is None
        assert clone.term(0) == terms[0]
        assert clone.lookup(terms[1]) == 1

    def test_repr_reports_lazy_vs_materialized(self):
        interner = TermInterner.lazy(_ListSource([IRI("http://e/x")]), 1)
        assert "lazy" in repr(interner)
        interner.lookup(IRI("http://e/x"))
        assert "materialized" in repr(interner)

    def test_lazy_source_errors_propagate(self):
        interner = TermInterner.lazy(_ListSource([]), 1)
        with pytest.raises(IndexError):
            interner.term(0)
