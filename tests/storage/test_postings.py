"""Tests for the sorted-int posting runs backing the columnar indexes."""

import pickle
import random
from array import array

from repro.storage.postings import IntPostings


def test_ascending_bulk_load_stays_sorted():
    postings = IntPostings()
    for value in range(100):
        assert postings.add(value)
    assert list(postings) == list(range(100))
    assert len(postings) == 100


def test_out_of_order_inserts_buffer_then_merge():
    postings = IntPostings()
    values = list(range(0, 400, 2))
    random.Random(7).shuffle(values)
    for value in values:
        postings.add(value)
    assert list(postings) == sorted(values)


def test_add_is_distinct():
    postings = IntPostings()
    assert postings.add(5)
    assert not postings.add(5)
    postings.add(1)  # goes to the delta buffer (out of order)
    assert not postings.add(1)
    assert len(postings) == 2


def test_membership_checks_both_run_and_delta():
    postings = IntPostings()
    postings.add(10)
    postings.add(3)  # delta
    assert 10 in postings
    assert 3 in postings
    assert 7 not in postings


def test_discard_from_run_and_delta():
    postings = IntPostings()
    for value in (2, 9, 4):
        postings.add(value)
    assert postings.discard(4)
    assert not postings.discard(4)
    assert postings.discard(2)
    assert list(postings) == [9]
    assert postings.discard(9)
    assert not postings
    assert len(postings) == 0


def test_randomized_add_discard_matches_set_model():
    rng = random.Random(20240807)
    postings = IntPostings()
    model: set[int] = set()
    for _ in range(3000):
        value = rng.randrange(200)
        if rng.random() < 0.6:
            assert postings.add(value) == (value not in model)
            model.add(value)
        else:
            assert postings.discard(value) == (value in model)
            model.discard(value)
        if rng.random() < 0.01:
            assert list(postings) == sorted(model)
    assert list(postings) == sorted(model)


def test_from_view_is_zero_copy_until_mutated():
    backing = array("q", [1, 5, 9])
    view = memoryview(backing)
    postings = IntPostings.from_view(view)
    assert "view" in repr(postings)
    assert 5 in postings
    assert list(postings) == [1, 5, 9]
    assert "view" in repr(postings)  # reads do not materialize
    postings.add(7)
    assert "array" in repr(postings)  # first write copies out of the view
    assert list(postings) == [1, 5, 7, 9]
    assert list(backing) == [1, 5, 9]  # the backing store is untouched


def test_sorted_array_compacts():
    postings = IntPostings()
    postings.add(8)
    postings.add(2)
    run = postings.sorted_array()
    assert list(run) == [2, 8]
    assert type(run) is array


def test_sorted_array_copies_out_of_views():
    backing = array("q", [2, 8])
    postings = IntPostings.from_view(memoryview(backing))
    run = postings.sorted_array()
    run.append(99)  # a private copy: neither postings nor backing change
    assert list(postings) == [2, 8]
    assert list(backing) == [2, 8]


def test_pickle_round_trip_materializes_views():
    postings = IntPostings.from_view(memoryview(array("q", [3, 6])))
    clone = pickle.loads(pickle.dumps(postings))
    assert clone == postings
    assert "array" in repr(clone)


def test_equality_is_by_contents():
    a = IntPostings()
    b = IntPostings()
    for value in (4, 1, 8):
        a.add(value)
    for value in (1, 8, 4):
        b.add(value)
    assert a == b
    b.add(2)
    assert a != b
    assert a.__eq__(object()) is NotImplemented
