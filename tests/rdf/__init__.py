"""Test package."""
