"""Property-based tests for the RDF substrate (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.namespaces import XSD
from repro.rdf import (
    BlankNode,
    Graph,
    IRI,
    Literal,
    Triple,
    graphs_equal_modulo_bnodes,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_turtle,
)

_SAFE = string.ascii_letters + string.digits
_LOCAL = st.text(alphabet=_SAFE, min_size=1, max_size=8)

iris = _LOCAL.map(lambda s: IRI("http://example.org/" + s))
bnodes = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6).map(BlankNode)
datatypes = st.sampled_from([XSD.string, XSD.integer, XSD.date, XSD.gYear, None])
lexicals = st.text(
    alphabet=string.ascii_letters + string.digits + ' .,:;!?\'"\\\n\t-_éü€',
    max_size=20,
)


@st.composite
def literals(draw):
    lexical = draw(lexicals)
    if draw(st.booleans()):
        return Literal(lexical, language=draw(st.sampled_from(["en", "de", "fr-CA"])))
    return Literal(lexical, draw(datatypes))


subjects = st.one_of(iris, bnodes)
objects = st.one_of(iris, bnodes, literals())
triples = st.builds(Triple, subjects, iris, objects)
graphs = st.lists(triples, max_size=30).map(Graph)


@given(graphs)
@settings(max_examples=60)
def test_ntriples_round_trip(graph):
    """parse(serialize(G)) == G for arbitrary graphs."""
    assert parse_ntriples(serialize_ntriples(graph)) == graph


@given(graphs)
@settings(max_examples=40)
def test_turtle_round_trip(graph):
    """Turtle serialization round-trips up to blank-node renaming."""
    again = parse_turtle(serialize_turtle(graph))
    assert graphs_equal_modulo_bnodes(graph, again)


@given(graphs, graphs)
@settings(max_examples=40)
def test_union_is_commutative_and_contains_operands(a, b):
    union = a | b
    assert union == (b | a)
    assert all(t in union for t in a)
    assert all(t in union for t in b)


@given(graphs, graphs)
@settings(max_examples=40)
def test_difference_union_identity(a, b):
    """(A - B) | (A & B) == A."""
    assert ((a - b) | (a & b)) == a


@given(graphs, triples)
@settings(max_examples=40)
def test_add_remove_is_identity(graph, triple):
    if triple in graph:
        graph.remove(triple)
    before = graph.copy()
    graph.add(triple)
    graph.remove(triple)
    assert graph == before


@given(graphs)
@settings(max_examples=40)
def test_pattern_queries_partition_the_graph(graph):
    """Summing s-bound matches over all subjects covers every triple."""
    total = sum(
        len(list(graph.triples(s=s))) for s in graph.subject_set()
    )
    assert total == len(graph)


@given(graphs)
@settings(max_examples=40)
def test_stats_are_consistent(graph):
    stats = graph.stats()
    assert stats.n_triples == len(graph)
    assert stats.n_subjects == len(graph.subject_set())
    assert stats.n_objects == len(graph.object_set())
    assert stats.n_instances <= stats.n_subjects


@given(st.lists(triples, max_size=20))
@settings(max_examples=40)
def test_graph_deduplicates(triple_list):
    graph = Graph(triple_list)
    assert len(graph) == len(set(triple_list))


# --------------------------------------------------------------------- #
# Serializer escaping: serialize must always emit parseable N-Triples
# --------------------------------------------------------------------- #

# Everything except lone surrogates (which have a replacement policy,
# tested separately): C0/C1 controls, every str.splitlines boundary,
# and astral-plane codepoints.
_evil_text = st.text(
    alphabet=st.characters(max_codepoint=0x10FFFF, exclude_categories=("Cs",)),
    max_size=12,
)
_IRI_FORBIDDEN = set(" \n\t\r<>")
_evil_iris = _evil_text.map(
    lambda s: IRI(
        "http://example.org/" + "".join(c for c in s if c not in _IRI_FORBIDDEN)
    )
)


@st.composite
def _evil_literals(draw):
    lexical = draw(_evil_text)
    if draw(st.booleans()):
        return Literal(lexical, language=draw(st.sampled_from(["en", "de"])))
    return Literal(lexical, draw(datatypes))


_evil_graphs = st.lists(
    st.builds(
        Triple, st.one_of(_evil_iris, bnodes), _evil_iris,
        st.one_of(_evil_iris, bnodes, _evil_literals()),
    ),
    max_size=15,
).map(Graph)


@given(_evil_graphs)
@settings(max_examples=120)
def test_serialize_ntriples_is_always_parseable(graph):
    """Any literal/IRI content round-trips: controls, line separators,
    astral codepoints — the serializer escapes whatever would break the
    line-oriented grammar."""
    text = serialize_ntriples(graph)
    assert parse_ntriples(text) == graph


@given(_evil_graphs)
@settings(max_examples=60)
def test_serialized_statements_stay_one_per_line(graph):
    """No payload character may smuggle a line break past splitlines."""
    text = serialize_ntriples(graph)
    lines = [line for line in text.splitlines() if line]
    assert len(lines) == len(graph)
    for line in lines:
        assert line.endswith(" .")
