"""Unit tests for the Turtle parser and serializer."""

import pytest

from repro.errors import ParseError
from repro.namespaces import RDF, RDF_TYPE, XSD
from repro.rdf import (
    BlankNode,
    IRI,
    Literal,
    PrefixMap,
    Triple,
    graphs_equal_modulo_bnodes,
    parse_turtle,
    rdf_list_items,
    serialize_turtle,
)


class TestDirectives:
    def test_prefix_binding(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ex:b .")
        assert Triple(IRI("http://x/a"), IRI("http://x/p"), IRI("http://x/b")) in g

    def test_sparql_style_prefix(self):
        g = parse_turtle("PREFIX ex: <http://x/>\nex:a ex:p ex:b .")
        assert len(g) == 1

    def test_empty_prefix(self):
        g = parse_turtle("@prefix : <http://x/> . :a :p :b .")
        assert Triple(IRI("http://x/a"), IRI("http://x/p"), IRI("http://x/b")) in g

    def test_base_resolution(self):
        g = parse_turtle("@base <http://x/> . <a> <p> <b> .")
        assert Triple(IRI("http://x/a"), IRI("http://x/p"), IRI("http://x/b")) in g

    def test_unknown_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("zzz:a zzz:p zzz:b .")


class TestStatements:
    def test_a_keyword(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a a ex:C .")
        assert Triple(IRI("http://x/a"), IRI(RDF_TYPE), IRI("http://x/C")) in g

    def test_semicolon_shorthand(self):
        g = parse_turtle(
            "@prefix ex: <http://x/> . ex:a ex:p ex:b ; ex:q ex:c ."
        )
        assert len(g) == 2

    def test_comma_shorthand(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ex:b, ex:c .")
        assert len(list(g.objects(IRI("http://x/a"), IRI("http://x/p")))) == 2

    def test_trailing_semicolon(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ex:b ; .")
        assert len(g) == 1

    def test_comments_ignored(self):
        g = parse_turtle(
            "@prefix ex: <http://x/> . # comment\nex:a ex:p ex:b . # tail"
        )
        assert len(g) == 1

    def test_missing_dot_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ex:b")


class TestLiterals:
    def test_plain_string(self):
        g = parse_turtle('@prefix ex: <http://x/> . ex:a ex:p "v" .')
        assert Literal("v") in g.object_set()

    def test_language_tag(self):
        g = parse_turtle('@prefix ex: <http://x/> . ex:a ex:p "v"@fr .')
        assert Literal("v", language="fr") in g.object_set()

    def test_typed_literal_prefixed(self):
        g = parse_turtle(
            "@prefix ex: <http://x/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> ."
            ' ex:a ex:p "5"^^xsd:integer .'
        )
        assert Literal("5", XSD.integer) in g.object_set()

    def test_integer_shorthand(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p 42 .")
        assert Literal("42", XSD.integer) in g.object_set()

    def test_decimal_shorthand(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p 4.5 .")
        assert Literal("4.5", XSD.decimal) in g.object_set()

    def test_double_shorthand(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p 1e3 .")
        assert Literal("1e3", XSD.double) in g.object_set()

    def test_boolean_shorthand(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p true .")
        assert Literal("true", XSD.boolean) in g.object_set()

    def test_triple_quoted_string(self):
        g = parse_turtle('@prefix ex: <http://x/> . ex:a ex:p """multi\nline""" .')
        assert Literal("multi\nline") in g.object_set()

    def test_escapes(self):
        g = parse_turtle('@prefix ex: <http://x/> . ex:a ex:p "a\\tb\\u0041" .')
        assert Literal("a\tbA") in g.object_set()


class TestBlankNodes:
    def test_labelled(self):
        g = parse_turtle("@prefix ex: <http://x/> . _:x ex:p _:y .")
        assert Triple(BlankNode("x"), IRI("http://x/p"), BlankNode("y")) in g

    def test_anonymous_property_list(self):
        g = parse_turtle('@prefix ex: <http://x/> . ex:a ex:p [ ex:q "v" ] .')
        assert len(g) == 2
        inner = g.value(IRI("http://x/a"), IRI("http://x/p"))
        assert isinstance(inner, BlankNode)
        assert g.value(inner, IRI("http://x/q")) == Literal("v")

    def test_nested_property_lists(self):
        g = parse_turtle(
            '@prefix ex: <http://x/> . ex:a ex:p [ ex:q [ ex:r "v" ] ] .'
        )
        assert len(g) == 3

    def test_bnode_as_subject(self):
        g = parse_turtle('@prefix ex: <http://x/> . [ ex:p "v" ] ex:q ex:b .')
        assert len(g) == 2


class TestCollections:
    def test_collection_structure(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ( ex:x ex:y ) .")
        head = g.value(IRI("http://x/a"), IRI("http://x/p"))
        items = rdf_list_items(g, head)
        assert items == [IRI("http://x/x"), IRI("http://x/y")]

    def test_empty_collection_is_nil(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p () .")
        assert g.value(IRI("http://x/a"), IRI("http://x/p")) == IRI(RDF.nil)

    def test_nested_collection(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ( ( ex:x ) ex:y ) .")
        head = g.value(IRI("http://x/a"), IRI("http://x/p"))
        outer = rdf_list_items(g, head)
        assert len(outer) == 2
        assert rdf_list_items(g, outer[0]) == [IRI("http://x/x")]

    def test_malformed_list_raises(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ex:b .")
        with pytest.raises(ParseError):
            rdf_list_items(g, IRI("http://x/b"))


class TestSerializer:
    def test_round_trip_rich_document(self):
        g = parse_turtle(
            """
            @prefix ex: <http://x/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            ex:a a ex:C ; ex:name "A"@en ; ex:age "30"^^xsd:integer ;
                 ex:knows ex:b, ex:c .
            _:b1 ex:p ex:a .
            """
        )
        again = parse_turtle(serialize_turtle(g))
        assert graphs_equal_modulo_bnodes(g, again)

    def test_serializer_uses_prefixes(self):
        g = parse_turtle("@prefix ex: <http://example.org/> . ex:a ex:p ex:b .")
        text = serialize_turtle(g, PrefixMap({"ex": "http://example.org/"}))
        assert "ex:a" in text

    def test_serializer_falls_back_to_full_iri(self):
        g = parse_turtle("@prefix q: <http://unknown.example/> . q:a q:p q:b .")
        text = serialize_turtle(g, PrefixMap({}))
        assert "<http://unknown.example/a>" in text

    def test_deterministic_output(self):
        g = parse_turtle("@prefix ex: <http://x/> . ex:a ex:p ex:b ; ex:q ex:c .")
        assert serialize_turtle(g) == serialize_turtle(g)


class TestPrefixMap:
    def test_expand(self):
        pm = PrefixMap({"ex": "http://x/"})
        assert pm.expand("ex:a") == "http://x/a"

    def test_expand_unknown_raises(self):
        with pytest.raises(ParseError):
            PrefixMap({}).expand("ex:a")

    def test_expand_requires_colon(self):
        with pytest.raises(ParseError):
            PrefixMap({}).expand("noprefix")

    def test_compact_longest_match(self):
        pm = PrefixMap({"a": "http://x/", "b": "http://x/sub/"})
        assert pm.compact("http://x/sub/name") == "b:name"

    def test_compact_no_match_returns_iri(self):
        pm = PrefixMap({"ex": "http://x/"})
        assert pm.compact("http://other/a") == "http://other/a"

    def test_compact_invalid_local_returns_iri(self):
        pm = PrefixMap({"ex": "http://x/"})
        assert pm.compact("http://x/a/b c") == "http://x/a/b c"

    def test_with_defaults_has_xsd(self):
        assert "xsd" in PrefixMap.with_defaults()
