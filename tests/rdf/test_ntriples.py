"""Unit tests for the N-Triples parser and serializer."""

import io

import pytest

from repro.errors import ParseError
from repro.namespaces import XSD
from repro.rdf import (
    BlankNode,
    IRI,
    Literal,
    Triple,
    iter_ntriples,
    parse_ntriples,
    serialize_ntriples,
    write_ntriples,
)
from repro.rdf.ntriples import parse_line


class TestParseLine:
    def test_simple_triple(self):
        triple = parse_line("<http://x/s> <http://x/p> <http://x/o> .")
        assert triple == Triple(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o"))

    def test_plain_literal(self):
        triple = parse_line('<http://x/s> <http://x/p> "hello" .')
        assert triple.o == Literal("hello")

    def test_typed_literal(self):
        line = f'<http://x/s> <http://x/p> "5"^^<{XSD.integer}> .'
        assert parse_line(line).o == Literal("5", XSD.integer)

    def test_language_literal(self):
        triple = parse_line('<http://x/s> <http://x/p> "hi"@en-GB .')
        assert triple.o == Literal("hi", language="en-GB")

    def test_blank_nodes(self):
        triple = parse_line("_:a <http://x/p> _:b .")
        assert triple.s == BlankNode("a") and triple.o == BlankNode("b")

    def test_escapes_in_literal(self):
        triple = parse_line('<http://x/s> <http://x/p> "a\\"b\\nc\\\\d" .')
        assert triple.o.lexical == 'a"b\nc\\d'

    def test_unicode_escapes(self):
        triple = parse_line('<http://x/s> <http://x/p> "\\u00e9\\U0001F600" .')
        assert triple.o.lexical == "é\U0001F600"

    def test_comment_line_is_none(self):
        assert parse_line("# a comment") is None

    def test_blank_line_is_none(self):
        assert parse_line("   ") is None

    @pytest.mark.parametrize(
        "bad",
        [
            "<http://x/s> <http://x/p> <http://x/o>",      # missing dot
            '"s" <http://x/p> <http://x/o> .',              # literal subject
            "<http://x/s> _:p <http://x/o> .",              # bnode predicate
            "<http://x/s> <http://x/p> .",                  # missing object
            '<http://x/s> <http://x/p> "unterminated .',
            "<http://x/s <http://x/p> <http://x/o> .",      # unterminated IRI
            "<http://x/s> <http://x/p> <http://x/o> . junk",
        ],
    )
    def test_invalid_lines_raise(self, bad):
        with pytest.raises(ParseError):
            parse_line(bad)

    def test_parse_error_carries_line_number(self):
        with pytest.raises(ParseError) as err:
            parse_line("<http://x/s> ???", lineno=7)
        assert err.value.line == 7


class TestDocuments:
    DOC = (
        "# header comment\n"
        "<http://x/a> <http://x/p> <http://x/b> .\n"
        "\n"
        '<http://x/a> <http://x/name> "A" .\n'
    )

    def test_parse_document(self):
        g = parse_ntriples(self.DOC)
        assert len(g) == 2

    def test_iter_streaming(self):
        triples = list(iter_ntriples(io.StringIO(self.DOC)))
        assert len(triples) == 2

    def test_parse_from_file(self, tmp_path):
        path = tmp_path / "data.nt"
        path.write_text(self.DOC, encoding="utf-8")
        assert len(parse_ntriples(path)) == 2

    def test_round_trip(self):
        g = parse_ntriples(self.DOC)
        again = parse_ntriples(serialize_ntriples(g))
        assert again == g

    def test_serialize_sorted_is_deterministic(self):
        g = parse_ntriples(self.DOC)
        assert serialize_ntriples(g, sort=True) == serialize_ntriples(g, sort=True)

    def test_serialize_empty(self):
        assert serialize_ntriples([]) == ""

    def test_write_ntriples(self, tmp_path):
        g = parse_ntriples(self.DOC)
        path = tmp_path / "out.nt"
        count = write_ntriples(g, path)
        assert count == 2
        assert parse_ntriples(path) == g

    def test_round_trip_special_values(self):
        g = parse_ntriples(
            '_:b1 <http://x/p> "line1\\nline2"@en .\n'
            f'<http://x/s> <http://x/q> "3.14"^^<{XSD.double}> .\n'
        )
        assert parse_ntriples(serialize_ntriples(g)) == g


class TestUnicodeEscapeBounds:
    """Escapes outside the Unicode range must raise ParseError, not crash."""

    @pytest.mark.parametrize("escape", ["\\U00110000", "\\UFFFFFFFF"])
    def test_out_of_range_in_literal(self, escape):
        with pytest.raises(ParseError):
            parse_line(f'<http://x/s> <http://x/p> "a{escape}b" .')

    @pytest.mark.parametrize("escape", ["\\uD800", "\\uDFFF", "\\UD9999999"])
    def test_surrogate_in_literal(self, escape):
        with pytest.raises(ParseError):
            parse_line(f'<http://x/s> <http://x/p> "a{escape}b" .')

    @pytest.mark.parametrize("escape", ["\\U00110000", "\\uD800", "\\uDFFF"])
    def test_out_of_range_in_iri(self, escape):
        with pytest.raises(ParseError):
            parse_line(f'<http://x/s{escape}> <http://x/p> <http://x/o> .')

    def test_non_hex_digits_in_iri(self):
        with pytest.raises(ParseError):
            parse_line('<http://x/s\\uZZZZ> <http://x/p> <http://x/o> .')

    def test_max_codepoint_still_parses(self):
        triple = parse_line('<http://x/s> <http://x/p> "\\U0010FFFF" .')
        assert triple.o == Literal("\U0010FFFF")


class TestBnodeTerminator:
    """A '.' directly after a blank node label is the statement terminator."""

    def test_object_bnode_tight_dot(self):
        triple = parse_line("<http://x/s> <http://x/p> _:b.")
        assert triple.o == BlankNode("b")

    def test_dots_inside_labels_survive(self):
        triple = parse_line("_:a.b <http://x/p> _:c.d .")
        assert triple.s == BlankNode("a.b")
        assert triple.o == BlankNode("c.d")

    def test_label_trailing_dots_all_given_back(self):
        # "_:b.." = label "b" followed by terminator plus trailing junk.
        with pytest.raises(ParseError):
            parse_line("<http://x/s> <http://x/p> _:b..")


class TestSerializerEscaping:
    """serialize_ntriples must provably emit parseable output.

    The historical asymmetry: the parser unescaped ``\\uXXXX`` in IRIs
    and named escapes in literals, but the serializer only escaped the
    named subset — so literals with line separators (``\\x0c``,
    ``\\u2028``, ...) or IRIs containing a backslash produced documents
    the parser split or decoded differently.
    """

    def _round_trip_one(self, obj):
        g = [Triple(IRI("http://x/s"), IRI("http://x/p"), obj)]
        text = serialize_ntriples(g)
        assert len(text.splitlines()) == 1, f"statement split: {text!r}"
        (again,) = parse_ntriples(text)
        return text, again.o

    @pytest.mark.parametrize(
        "ch", ["\x00", "\x07", "\x0b", "\x0c", "\x1c", "\x1d", "\x1e",
               "\x7f", "\x85", " ", " "]
    )
    def test_control_and_line_separator_literals(self, ch):
        _, again = self._round_trip_one(Literal(f"a{ch}b"))
        assert again == Literal(f"a{ch}b")

    def test_non_bmp_literal_passes_through(self):
        text, again = self._round_trip_one(Literal("smile \U0001f600"))
        assert again == Literal("smile \U0001f600")
        assert "\U0001f600" in text  # no needless ASCII-folding

    def test_lone_surrogate_replaced_with_ufffd(self):
        # Lone surrogates cannot be written: the parser (correctly)
        # rejects surrogate \uXXXX escapes and surrogates cannot be
        # UTF-8 encoded. Policy: replace at serialization time.
        text, again = self._round_trip_one(Literal("a\ud800b\udfffc"))
        assert again == Literal("a�b�c")
        assert "�" in text

    def test_iri_backslash_round_trips(self):
        # A literal backslash inside an IRI must not be re-interpreted
        # as an escape sequence on the way back in.
        iri = IRI("http://x/path\\u0041")
        _, again = self._round_trip_one(iri)
        assert again == iri  # NOT IRI("http://x/pathA")

    def test_iri_grammar_forbidden_chars_escaped(self):
        iri = IRI('http://x/a"b^c`d{e|f}g')
        text, again = self._round_trip_one(iri)
        assert again == iri
        # None of the N-Triples-forbidden raw characters appear in the
        # serialized IRI token.
        iri_token = text.split(" ")[2]
        assert not any(c in iri_token for c in '"^`{|}')

    def test_escaped_output_is_pure_single_line_per_statement(self):
        g = [
            Triple(IRI("http://x/s"), IRI("http://x/p"),
                   Literal("x y\x1cz", language="en")),
            Triple(IRI("http://x/s"), IRI("http://x/q r"),
                   Literal("\x00")),
        ]
        text = serialize_ntriples(g)
        lines = [line for line in text.splitlines() if line]
        assert len(lines) == 2
        assert set(parse_ntriples(text)) == set(g)
