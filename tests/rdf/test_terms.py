"""Unit tests for the RDF term model (IRI, BlankNode, Literal, Triple)."""

import pytest

from repro.errors import TermError
from repro.namespaces import XSD
from repro.rdf import IRI, BlankNode, Literal, Triple, is_blank, is_iri, is_literal


class TestIRI:
    def test_value_round_trip(self):
        assert IRI("http://example.org/a").value == "http://example.org/a"

    def test_equality_by_value(self):
        assert IRI("http://x/a") == IRI("http://x/a")
        assert IRI("http://x/a") != IRI("http://x/b")

    def test_hashable(self):
        assert len({IRI("http://x/a"), IRI("http://x/a")}) == 1

    def test_n3(self):
        assert IRI("http://x/a").n3() == "<http://x/a>"

    def test_str(self):
        assert str(IRI("http://x/a")) == "http://x/a"

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            IRI("")

    def test_rejects_non_string(self):
        with pytest.raises(TermError):
            IRI(42)

    @pytest.mark.parametrize("bad", ["http://x/a b", "http://x/<a>", "a\nb", "a\tb"])
    def test_rejects_forbidden_characters(self, bad):
        with pytest.raises(TermError):
            IRI(bad)

    def test_immutable(self):
        iri = IRI("http://x/a")
        with pytest.raises(AttributeError):
            iri.value = "http://x/b"

    def test_not_equal_to_string(self):
        assert IRI("http://x/a") != "http://x/a"


class TestBlankNode:
    def test_label(self):
        assert BlankNode("b1").label == "b1"

    def test_fresh_labels_unique(self):
        assert BlankNode() != BlankNode()

    def test_equality_by_label(self):
        assert BlankNode("b") == BlankNode("b")

    def test_n3(self):
        assert BlankNode("b1").n3() == "_:b1"

    def test_str(self):
        assert str(BlankNode("b1")) == "_:b1"

    def test_rejects_empty_label(self):
        with pytest.raises(TermError):
            BlankNode("")

    def test_immutable(self):
        node = BlankNode("b")
        with pytest.raises(AttributeError):
            node.label = "c"

    def test_distinct_from_iri(self):
        assert BlankNode("b") != IRI("http://x/b")


class TestLiteral:
    def test_default_datatype_is_string(self):
        assert Literal("hi").datatype == XSD.string

    def test_language_tag_implies_langstring(self):
        lit = Literal("hi", language="en")
        assert lit.language == "en"
        assert lit.datatype == Literal.LANG_STRING

    def test_language_with_conflicting_datatype_rejected(self):
        with pytest.raises(TermError):
            Literal("hi", XSD.string, language="en")

    def test_rejects_non_string_lexical(self):
        with pytest.raises(TermError):
            Literal(42)

    def test_equality_includes_datatype(self):
        assert Literal("1", XSD.integer) != Literal("1", XSD.string)
        assert Literal("1", XSD.integer) == Literal("1", XSD.integer)

    def test_equality_includes_language(self):
        assert Literal("a", language="en") != Literal("a", language="de")

    def test_n3_plain(self):
        assert Literal("hi").n3() == '"hi"'

    def test_n3_typed(self):
        assert Literal("5", XSD.integer).n3() == f'"5"^^<{XSD.integer}>'

    def test_n3_language(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_n3_escaping(self):
        assert Literal('a"b\\c\nd').n3() == '"a\\"b\\\\c\\nd"'

    @pytest.mark.parametrize(
        "lexical,datatype,expected",
        [
            ("42", XSD.integer, 42),
            ("-7", XSD.int, -7),
            ("3.5", XSD.double, 3.5),
            ("2.0", XSD.decimal, 2.0),
            ("true", XSD.boolean, True),
            ("false", XSD.boolean, False),
            ("plain", XSD.string, "plain"),
        ],
    )
    def test_to_python(self, lexical, datatype, expected):
        assert Literal(lexical, datatype).to_python() == expected

    def test_to_python_malformed_falls_back_to_lexical(self):
        assert Literal("not-a-number", XSD.integer).to_python() == "not-a-number"

    def test_to_python_unknown_datatype(self):
        assert Literal("x", "http://custom/dt").to_python() == "x"

    def test_immutable(self):
        lit = Literal("a")
        with pytest.raises(AttributeError):
            lit.lexical = "b"


class TestTriple:
    def test_unpacking(self):
        t = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        s, p, o = t
        assert (s, p, o) == (t.s, t.p, t.o)

    def test_indexing(self):
        t = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        assert t[0] == t.s and t[1] == t.p and t[2] == t.o

    def test_equality_and_hash(self):
        a = Triple(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o"))
        b = Triple(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o"))
        assert a == b
        assert len({a, b}) == 1

    def test_literal_subject_rejected(self):
        with pytest.raises(TermError):
            Triple(Literal("s"), IRI("http://x/p"), Literal("o"))

    def test_non_iri_predicate_rejected(self):
        with pytest.raises(TermError):
            Triple(IRI("http://x/s"), BlankNode("p"), Literal("o"))

    def test_blank_node_subject_allowed(self):
        t = Triple(BlankNode("b"), IRI("http://x/p"), IRI("http://x/o"))
        assert t.s == BlankNode("b")

    def test_n3(self):
        t = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        assert t.n3() == '<http://x/s> <http://x/p> "o" .'

    def test_immutable(self):
        t = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        with pytest.raises(AttributeError):
            t.s = IRI("http://x/other")


class TestPredicates:
    def test_is_literal(self):
        assert is_literal(Literal("a"))
        assert not is_literal(IRI("http://x/a"))

    def test_is_iri(self):
        assert is_iri(IRI("http://x/a"))
        assert not is_iri(BlankNode("b"))

    def test_is_blank(self):
        assert is_blank(BlankNode("b"))
        assert not is_blank(Literal("b"))
