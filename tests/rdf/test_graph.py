"""Unit tests for the indexed triple store."""

import pytest

from repro.namespaces import RDF_TYPE, RDFS, XSD
from repro.rdf import IRI, BlankNode, Graph, Literal, Triple, graphs_equal_modulo_bnodes

EX = "http://example.org/"


def iri(local: str) -> IRI:
    return IRI(EX + local)


def t(s: str, p: str, o) -> Triple:
    obj = o if not isinstance(o, str) else iri(o)
    return Triple(iri(s), iri(p), obj)


@pytest.fixture
def graph() -> Graph:
    g = Graph()
    g.add(t("alice", "knows", "bob"))
    g.add(t("alice", "knows", "carol"))
    g.add(t("bob", "knows", "carol"))
    g.add(t("alice", "name", Literal("Alice")))
    g.add(Triple(iri("alice"), IRI(RDF_TYPE), iri("Person")))
    g.add(Triple(iri("bob"), IRI(RDF_TYPE), iri("Person")))
    return g


class TestMutation:
    def test_add_returns_true_when_new(self):
        g = Graph()
        assert g.add(t("a", "p", "b")) is True

    def test_add_duplicate_is_noop(self, graph):
        size = len(graph)
        assert graph.add(t("alice", "knows", "bob")) is False
        assert len(graph) == size

    def test_remove_present(self, graph):
        assert graph.remove(t("alice", "knows", "bob")) is True
        assert t("alice", "knows", "bob") not in graph

    def test_remove_absent_returns_false(self, graph):
        assert graph.remove(t("zed", "knows", "bob")) is False

    def test_remove_cleans_all_indexes(self):
        g = Graph()
        g.add(t("a", "p", "b"))
        g.remove(t("a", "p", "b"))
        assert list(g.triples(s=iri("a"))) == []
        assert list(g.triples(p=iri("p"))) == []
        assert list(g.triples(o=iri("b"))) == []

    def test_update_counts_inserted(self, graph):
        n = graph.update([t("x", "p", "y"), t("alice", "knows", "bob")])
        assert n == 1

    def test_discard_all(self, graph):
        n = graph.discard_all([t("alice", "knows", "bob"), t("no", "p", "x")])
        assert n == 1

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert not graph

    def test_add_triple_convenience(self):
        g = Graph()
        g.add_triple(iri("a"), iri("p"), Literal("v"))
        assert len(g) == 1


class TestPatterns:
    def test_fully_bound_hit(self, graph):
        assert len(list(graph.triples(iri("alice"), iri("knows"), iri("bob")))) == 1

    def test_fully_bound_miss(self, graph):
        assert list(graph.triples(iri("alice"), iri("knows"), iri("zed"))) == []

    def test_s_bound(self, graph):
        assert len(list(graph.triples(s=iri("alice")))) == 4

    def test_p_bound(self, graph):
        assert len(list(graph.triples(p=iri("knows")))) == 3

    def test_o_bound(self, graph):
        assert len(list(graph.triples(o=iri("carol")))) == 2

    def test_sp_bound(self, graph):
        assert len(list(graph.triples(s=iri("alice"), p=iri("knows")))) == 2

    def test_so_bound(self, graph):
        assert len(list(graph.triples(s=iri("alice"), o=iri("bob")))) == 1

    def test_po_bound(self, graph):
        results = list(graph.triples(p=iri("knows"), o=iri("carol")))
        assert {r.s for r in results} == {iri("alice"), iri("bob")}

    def test_all_wildcards(self, graph):
        assert len(list(graph.triples())) == len(graph)

    def test_unknown_subject_is_empty(self, graph):
        assert list(graph.triples(s=iri("nobody"))) == []

    def test_count_matches_triples(self, graph):
        assert graph.count(p=iri("knows")) == 3
        assert graph.count(s=iri("alice"), p=iri("knows")) == 2
        assert graph.count() == len(graph)


class TestAccessors:
    def test_objects(self, graph):
        assert set(graph.objects(iri("alice"), iri("knows"))) == {
            iri("bob"), iri("carol"),
        }

    def test_subjects(self, graph):
        assert set(graph.subjects(iri("knows"), iri("carol"))) == {
            iri("alice"), iri("bob"),
        }

    def test_value_present(self, graph):
        assert graph.value(iri("alice"), iri("name")) == Literal("Alice")

    def test_value_absent(self, graph):
        assert graph.value(iri("alice"), iri("missing")) is None

    def test_predicates_of(self, graph):
        assert iri("knows") in set(graph.predicates_of(iri("alice")))

    def test_term_sets(self, graph):
        assert iri("alice") in graph.subject_set()
        assert iri("knows") in graph.predicate_set()
        assert Literal("Alice") in graph.object_set()


class TestTyping:
    def test_types_of(self, graph):
        assert graph.types_of(iri("alice")) == {iri("Person")}

    def test_instances_of(self, graph):
        assert set(graph.instances_of(iri("Person"))) == {iri("alice"), iri("bob")}

    def test_classes(self, graph):
        assert graph.classes() == {iri("Person")}

    def test_classes_include_subclass_statements(self):
        g = Graph()
        g.add(Triple(iri("Dog"), IRI(RDFS.subClassOf), iri("Animal")))
        assert g.classes() == {iri("Dog"), iri("Animal")}

    def test_superclasses_transitive(self):
        g = Graph()
        g.add(Triple(iri("A"), IRI(RDFS.subClassOf), iri("B")))
        g.add(Triple(iri("B"), IRI(RDFS.subClassOf), iri("C")))
        assert g.superclasses(iri("A")) == {iri("B"), iri("C")}

    def test_superclasses_handles_cycles(self):
        g = Graph()
        g.add(Triple(iri("A"), IRI(RDFS.subClassOf), iri("B")))
        g.add(Triple(iri("B"), IRI(RDFS.subClassOf), iri("A")))
        assert g.superclasses(iri("A")) == {iri("A"), iri("B")}

    def test_is_instance_of_direct(self, graph):
        assert graph.is_instance_of(iri("alice"), iri("Person"))

    def test_is_instance_of_via_subclass(self):
        g = Graph()
        g.add(Triple(iri("Dog"), IRI(RDFS.subClassOf), iri("Animal")))
        g.add(Triple(iri("rex"), IRI(RDF_TYPE), iri("Dog")))
        assert g.is_instance_of(iri("rex"), iri("Animal"))
        assert not g.is_instance_of(iri("rex"), iri("Plant"))


class TestSetAlgebra:
    def test_union(self):
        a = Graph([t("a", "p", "b")])
        b = Graph([t("c", "p", "d")])
        assert len(a | b) == 2

    def test_difference(self):
        a = Graph([t("a", "p", "b"), t("c", "p", "d")])
        b = Graph([t("a", "p", "b")])
        assert (a - b) == Graph([t("c", "p", "d")])

    def test_intersection(self):
        a = Graph([t("a", "p", "b"), t("c", "p", "d")])
        b = Graph([t("a", "p", "b"), t("e", "p", "f")])
        assert (a & b) == Graph([t("a", "p", "b")])

    def test_union_does_not_mutate_operands(self):
        a = Graph([t("a", "p", "b")])
        b = Graph([t("c", "p", "d")])
        _ = a | b
        assert len(a) == 1 and len(b) == 1

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(t("new", "p", "o"))
        assert len(clone) == len(graph) + 1

    def test_equality(self):
        a = Graph([t("a", "p", "b")])
        b = Graph([t("a", "p", "b")])
        assert a == b
        b.add(t("c", "p", "d"))
        assert a != b

    def test_graphs_unhashable(self, graph):
        with pytest.raises(TypeError):
            hash(graph)


class TestStats:
    def test_basic_counts(self, graph):
        stats = graph.stats()
        assert stats.n_triples == 6
        assert stats.n_subjects == 2
        assert stats.n_literals == 1
        assert stats.n_instances == 2
        assert stats.n_classes == 1
        assert stats.n_properties == 3
        assert stats.size_bytes > 0

    def test_as_row_keys(self, graph):
        row = graph.stats().as_row()
        assert "# of triples" in row and row["# of triples"] == 6


class TestBlankNodeEquality:
    def test_isomorphic_up_to_bnode_renaming(self):
        a = Graph([Triple(BlankNode("x"), iri("p"), Literal("v"))])
        b = Graph([Triple(BlankNode("y"), iri("p"), Literal("v"))])
        assert graphs_equal_modulo_bnodes(a, b)

    def test_different_structure_not_isomorphic(self):
        a = Graph([Triple(BlankNode("x"), iri("p"), Literal("v"))])
        b = Graph([Triple(BlankNode("y"), iri("q"), Literal("v"))])
        assert not graphs_equal_modulo_bnodes(a, b)

    def test_size_mismatch_not_isomorphic(self):
        a = Graph([t("a", "p", "b")])
        b = Graph([t("a", "p", "b"), t("a", "p", "c")])
        assert not graphs_equal_modulo_bnodes(a, b)

    def test_chained_blank_nodes(self):
        a = Graph([
            Triple(BlankNode("x"), iri("p"), BlankNode("y")),
            Triple(BlankNode("y"), iri("q"), Literal("v")),
        ])
        b = Graph([
            Triple(BlankNode("m"), iri("p"), BlankNode("n")),
            Triple(BlankNode("n"), iri("q"), Literal("v")),
        ])
        assert graphs_equal_modulo_bnodes(a, b)
