"""Bounded smoke runs of the property oracles (the real campaign is the
``repro fuzz`` CLI; CI runs it separately with a larger budget)."""

import pytest

from repro.fuzz import ORACLES, OracleContext, generate_case, run_fuzz


def test_oracle_registry_covers_every_kind():
    covered = {k for oracle in ORACLES.values() for k in oracle.kinds}
    assert covered == {"valid", "mutated", "noise", "pg", "text"}


def test_smoke_campaign_holds():
    report = run_fuzz(seed=0, cases=50, corpus_dir=None, parallel_every=0)
    assert report.ok, [str(f) for f in report.failures]
    assert report.cases == 50
    assert report.checks > 0


def test_oracle_runs_are_counted_per_oracle():
    report = run_fuzz(seed=1, cases=20, corpus_dir=None, parallel_every=0)
    assert report.ok
    assert sum(report.oracle_runs.values()) == report.checks


@pytest.mark.parametrize("name", sorted(ORACLES))
def test_each_oracle_passes_on_matching_case(name):
    oracle = ORACLES[name]
    ctx = OracleContext(heavy=False)
    checked = 0
    for index in range(15):
        case = generate_case(seed=5, index=index)
        if case.kind not in oracle.kinds:
            continue
        assert oracle.fn(case, ctx) is None, (name, index)
        checked += 1
    assert checked > 0
