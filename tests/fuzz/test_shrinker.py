"""Tests for the greedy delta-debugging shrinker."""

from repro.fuzz import generate_case, shrink_case, shrink_items
from repro.fuzz.shrinker import case_items, rebuild_case


class TestShrinkItems:
    def test_shrinks_to_single_culprit(self):
        items = list(range(100))
        shrunk = shrink_items(items, lambda xs: 42 in xs)
        assert shrunk == [42]

    def test_shrinks_to_minimal_pair(self):
        items = list(range(50))
        shrunk = shrink_items(items, lambda xs: 7 in xs and 31 in xs)
        assert sorted(shrunk) == [7, 31]

    def test_keeps_everything_when_all_needed(self):
        items = [1, 2, 3]
        shrunk = shrink_items(items, lambda xs: len(xs) == 3)
        assert shrunk == items

    def test_budget_bounds_predicate_calls(self):
        calls = 0

        def fails(xs):
            nonlocal calls
            calls += 1
            return 0 in xs

        shrink_items(list(range(200)), fails, budget=25)
        assert calls <= 25

    def test_never_returns_non_failing_subset(self):
        shrunk = shrink_items(list(range(20)), lambda xs: sum(xs) >= 100)
        assert sum(shrunk) >= 100


class TestCaseRoundTrip:
    def test_rdf_case_items_rebuild(self):
        case = generate_case(seed=3, index=0)  # valid kind
        items = case_items(case)
        again = rebuild_case(case, items)
        assert again.triples == case.triples

    def test_pg_case_rebuild_drops_dangling_edges(self):
        case = generate_case(seed=3, index=3)  # pg kind
        items = case_items(case)
        node_ids = {item[1] for item in items if item[0] == "node"}
        kept = [
            item for item in items
            if item[0] == "node" or (item[1] in node_ids and item[2] in node_ids)
        ]
        rebuilt = rebuild_case(case, kept)
        for edge in rebuilt.pg.edges.values():
            assert edge.src in rebuilt.pg.nodes
            assert edge.dst in rebuilt.pg.nodes

    def test_text_case_shrinks_by_line(self):
        case = generate_case(seed=3, index=4)  # text kind
        small = shrink_case(case, lambda c: bool(c.text.strip()))
        assert len(small.text.splitlines()) <= len(case.text.splitlines())
