"""Tests for the deterministic fuzz-case generators."""

import random

import pytest

from repro.core.config import DEFAULT_OPTIONS
from repro.fuzz import CASE_KINDS, generate_case
from repro.fuzz.generators import (
    TAXONOMY,
    generate_evil_ntriples,
    generate_instance,
    generate_noise,
    generate_property_graph,
    generate_schema,
)
from repro.rdf import Graph
from repro.shacl import validate


class TestDeterminism:
    def test_same_seed_same_case(self):
        for index in range(10):
            a = generate_case(seed=7, index=index)
            b = generate_case(seed=7, index=index)
            assert a.kind == b.kind
            assert a.triples == b.triples
            assert a.text == b.text
            if a.pg is not None:
                assert a.pg.structurally_equal(b.pg)

    def test_different_seeds_differ(self):
        cases_a = [generate_case(seed=1, index=i) for i in range(5)]
        cases_b = [generate_case(seed=2, index=i) for i in range(5)]
        assert any(
            a.triples != b.triples or a.text != b.text
            for a, b in zip(cases_a, cases_b)
        )

    def test_kind_rotation_covers_all_kinds(self):
        kinds = [generate_case(seed=0, index=i).kind for i in range(len(CASE_KINDS))]
        assert sorted(kinds) == sorted(CASE_KINDS)


class TestSchemaGenerator:
    def test_taxonomy_categories_all_reachable(self):
        # Fig. 3 of the paper enumerates five property-shape categories;
        # the generator must be able to produce each one.
        from repro.shacl.model import PropertyShapeKind

        seen = set()
        for seed in range(30):
            schema = generate_schema(random.Random(seed))
            for shape in schema:
                for ps in schema.effective_property_shapes(shape.name):
                    seen.add(ps.kind())
        assert seen == set(PropertyShapeKind.ALL)

    def test_valid_instances_validate(self):
        for seed in range(15):
            rng = random.Random(seed)
            schema = generate_schema(rng)
            graph = Graph(generate_instance(rng, schema))
            report = validate(graph, schema)
            assert report.conforms, report


class TestOtherGenerators:
    def test_noise_offsets_do_not_collide(self):
        rng = random.Random(3)
        triples = generate_noise(rng, offset=0)
        assert triples

    def test_property_graph_has_nodes(self):
        pg = generate_property_graph(random.Random(5))
        assert pg.nodes

    def test_evil_ntriples_returns_note(self):
        text, note = generate_evil_ntriples(random.Random(9))
        assert isinstance(text, str) and text
        assert isinstance(note, str) and note
