"""Replay the checked-in shrunk reproducers against the fixed code."""

from pathlib import Path

import pytest

from repro.fuzz import ORACLES, load_reproducer, replay_corpus

CORPUS = Path(__file__).resolve().parents[1] / "fuzz_corpus"
FILES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert FILES, "tests/fuzz_corpus must contain shrunk reproducers"


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_reproducer_loads_and_names_known_oracle(path):
    case, oracle_name = load_reproducer(path)
    assert oracle_name in ORACLES
    assert case.kind in ORACLES[oracle_name].kinds


def test_replay_corpus_all_pass():
    failures = replay_corpus(CORPUS)
    assert not failures, [str(f) for f in failures]
