"""The flight recorder: bounded rings, slow-op capture, install hooks."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.recorder import FlightRecorder


# --------------------------------------------------------------------- #
# Ring bounds
# --------------------------------------------------------------------- #

def test_span_ring_is_bounded():
    recorder = obs.install_recorder(span_capacity=8)
    for i in range(50):
        with obs.span(f"op.{i}"):
            pass
    assert len(recorder.tracer) == 8
    names = [record["name"] for record in recorder.recent_spans()]
    assert names == [f"op.{i}" for i in range(42, 50)]  # newest retained


def test_recent_spans_limit():
    recorder = obs.install_recorder(span_capacity=32)
    for i in range(10):
        with obs.span(f"op.{i}"):
            pass
    tail = recorder.recent_spans(limit=3)
    assert [record["name"] for record in tail] == ["op.7", "op.8", "op.9"]


def test_slow_log_is_bounded():
    recorder = FlightRecorder(slow_threshold_ms=0.0, slow_capacity=4)
    for i in range(20):
        recorder.observe("query", f"q{i}", duration_s=0.001)
    slow = recorder.slow()
    assert len(slow) == 4
    assert [record["name"] for record in slow] == ["q16", "q17", "q18", "q19"]
    # Sequence numbers keep counting even though old records dropped.
    assert slow[-1]["seq"] == 20


# --------------------------------------------------------------------- #
# Slow-op capture
# --------------------------------------------------------------------- #

def test_threshold_gates_capture():
    recorder = FlightRecorder(slow_threshold_ms=50.0)
    assert recorder.observe("query", "fast", duration_s=0.01) is None
    record = recorder.observe("query", "slow", duration_s=0.2)
    assert record is not None
    assert record["duration_ms"] == pytest.approx(200.0)
    assert [r["name"] for r in recorder.slow()] == ["slow"]


def test_plan_capture_is_lazy():
    recorder = FlightRecorder(slow_threshold_ms=50.0)
    calls = []

    def plan():
        calls.append(1)
        return {"op": "Scan"}

    recorder.observe("query", "fast", duration_s=0.01, plan=plan)
    assert calls == []  # fast ops never pay for explain assembly
    record = recorder.observe("query", "slow", duration_s=0.1, plan=plan)
    assert calls == [1]
    assert record["plan"] == {"op": "Scan"}


def test_plan_capture_failure_never_fails_the_op():
    recorder = FlightRecorder(slow_threshold_ms=0.0)

    def broken():
        raise RuntimeError("no plan here")

    record = recorder.observe("query", "q", duration_s=0.1, plan=broken)
    assert "plan" not in record
    assert record["plan_error"] == "RuntimeError: no plan here"


def test_slow_capture_increments_counter():
    obs.install_recorder(slow_threshold_ms=0.0)
    obs.record_query("sparql", "SELECT 1", 0.01, rows=1)
    obs.record_op("cdc.batch", "batch@7", 0.01, detail={"size": 3})
    exposition = obs.get_metrics().to_prometheus()
    assert 'repro_slow_ops_total{kind="query"} 1' in exposition
    assert 'repro_slow_ops_total{kind="cdc.batch"} 1' in exposition
    slow = obs.get_recorder().slow()
    assert {record["kind"] for record in slow} == {"query", "cdc.batch"}
    assert slow[1]["size"] == 3  # detail merged into the record


# --------------------------------------------------------------------- #
# Module-level hooks + install semantics
# --------------------------------------------------------------------- #

def test_hooks_are_noops_without_recorder():
    assert obs.get_recorder() is None
    obs.record_query("sparql", "SELECT 1", 10.0, rows=0)
    obs.record_op("cdc.batch", "batch@1", 10.0)
    assert obs.get_recorder() is None
    assert obs.get_metrics().snapshot() == {}


def test_install_is_idempotent_and_uninstall_restores():
    first = obs.install_recorder(span_capacity=16)
    second = obs.install_recorder(span_capacity=999)
    assert second is first  # already installed: parameters ignored
    assert obs.get_tracer() is first.tracer
    obs.uninstall_recorder()
    assert obs.get_recorder() is None
    assert obs.get_tracer() is None


def test_install_respects_existing_tracer():
    obs.configure()  # an explicit --trace style unbounded tracer
    existing = obs.get_tracer()
    recorder = obs.install_recorder()
    assert obs.get_tracer() is existing  # recorder did not displace it
    assert recorder.tracer is not existing
    obs.uninstall_recorder()
    assert obs.get_tracer() is existing  # and uninstall leaves it alone


def test_install_preregisters_promised_families():
    obs.install_recorder()
    exposition = obs.get_metrics().to_prometheus()
    for family in (
        "repro_query_runs_total",
        "repro_query_latency_seconds",
        "repro_slow_ops_total",
        "repro_plan_q_error",
    ):
        assert f"# TYPE {family}" in exposition, family


def test_snapshot_reports_occupancy():
    recorder = obs.install_recorder(
        span_capacity=4, slow_threshold_ms=0.0, slow_capacity=2
    )
    with obs.span("one"):
        pass
    obs.record_query("sparql", "SELECT 1", 0.01, rows=1)
    snapshot = recorder.snapshot()
    assert snapshot["span_capacity"] == 4
    assert snapshot["spans_buffered"] == 1
    assert snapshot["slow_capacity"] == 2
    assert snapshot["slow_captured"] == 1
    assert snapshot["slow_threshold_ms"] == 0.0
    assert snapshot["started_unix_ms"] > 0
