"""The workload surfaces: CLI capture/report/replay/diff and the ops routes.

Drives the real ``repro`` CLI (``cli.main``) through the capture ->
replay -> diff workflow the CI smoke job runs, and scrapes the
``/debug/statements`` and ``/healthz`` routes of a live
:class:`~repro.obs.OpsServer`.

Two golden files pin the externally visible shapes (timings are
volatile, so every float is masked to ``#`` before comparison; the
statement list is re-sorted by ``(lang, fingerprint)`` because the
natural heaviest-first order depends on wall time):

* ``golden/statements.json`` — the ``/debug/statements`` payload;
* ``golden/workload_report.txt`` — ``repro obs report`` text output.

Regenerate with ``PYTHONPATH=src python tests/obs/test_workload_cli.py``.
"""

from __future__ import annotations

import json
import re
import urllib.request
from pathlib import Path

import pytest

from repro import cli, obs
from repro.core.pipeline import S3PG
from repro.datasets.university import university_graph, university_shapes
from repro.pg.store import PropertyGraphStore
from repro.query.cypher.evaluator import CypherEngine
from repro.query.sparql.evaluator import SparqlEngine
from repro.rdf.ntriples import write_ntriples

GOLDEN_DIR = Path(__file__).parent / "golden"
UNI = "http://example.org/university#"

_FLOAT_RE = re.compile(r"-?\d+\.\d+")


def _mask(text: str) -> str:
    """Replace every float (timings, q-errors) with ``#``."""
    return _FLOAT_RE.sub("#", text)


def _mask_table(text: str) -> str:
    """Mask floats in a rendered table and normalize the padding that
    depended on their widths (column fills and separator rules)."""
    masked = _mask(text)
    masked = re.sub(r" +", " ", masked)
    masked = re.sub(r"-{2,}", "--", masked)
    return masked


def _run_reference_workload():
    """A fixed query sequence over the Figure 2 graph (both engines).

    Returns the engines — the plan-cache registry holds weak
    references, so a caller inspecting ``/healthz`` must keep them
    alive past the scrape.
    """
    graph = university_graph()
    result = S3PG().transform(graph, university_shapes())
    store = PropertyGraphStore(result.graph)
    sparql = SparqlEngine(graph)
    cypher = CypherEngine(store)
    name_query = f"SELECT ?s ?n WHERE {{ ?s <{UNI}name> ?n }}"
    sparql.query(name_query)
    sparql.query(name_query)  # plan-cache hit
    sparql.query(
        f'SELECT ?s WHERE {{ ?s <{UNI}name> "Emma" }}'
    )
    sparql.query(
        f'SELECT ?s WHERE {{ ?s <{UNI}name> "Bob" }}'
    )  # literal twin: same fingerprint as the Emma query
    cypher.query("MATCH (p:uni_Professor) RETURN p.iri AS iri")
    return sparql, cypher


# --------------------------------------------------------------------- #
# CLI: capture with `repro query`
# --------------------------------------------------------------------- #

@pytest.fixture()
def uni_nt(tmp_path):
    path = tmp_path / "uni.nt"
    write_ntriples(university_graph(), path)
    return str(path)


def test_query_repeat_warmup_and_query_log(uni_nt, tmp_path, capsys):
    log = tmp_path / "wl.jsonl"
    rc = cli.main([
        "query", uni_nt,
        f"SELECT ?s ?n WHERE {{ ?s <{UNI}name> ?n }}",
        "--repeat", "3", "--warmup", "1",
        "--query-log", str(log), "--limit", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mean latency" in out
    assert "over 3 run(s) (1 warm-up)" in out
    assert "logged 4 statement(s)" in out  # warm-up runs are captured too
    records = obs.read_query_log(log)
    assert len(records) == 4
    assert all(r["lang"] == "sparql" for r in records)
    assert all("result_hash" in r for r in records)
    assert obs.get_workload() is None  # uninstalled afterwards


def test_query_log_sampling(uni_nt, tmp_path, capsys):
    log = tmp_path / "wl.jsonl"
    rc = cli.main([
        "query", uni_nt,
        f"SELECT ?s WHERE {{ ?s <{UNI}name> ?n }}",
        "--repeat", "4", "--query-log", str(log),
        "--query-log-sample", "2", "--limit", "0",
    ])
    assert rc == 0
    assert len(obs.read_query_log(log)) == 2


# --------------------------------------------------------------------- #
# CLI: report / replay / diff
# --------------------------------------------------------------------- #

def _capture(uni_nt: str, tmp_path) -> str:
    log = tmp_path / "wl.jsonl"
    for query in (
        f"SELECT ?s ?n WHERE {{ ?s <{UNI}name> ?n }}",
        f'SELECT ?s WHERE {{ ?s <{UNI}name> "Emma" }}',
    ):
        assert cli.main([
            "query", uni_nt, query,
            "--query-log", str(log), "--limit", "0",
        ]) == 0
    assert cli.main([
        "query", uni_nt,
        f"SELECT ?p ?d WHERE {{ ?p <{UNI}worksFor> ?d }}",
        "--via-pg", "--query-log", str(log), "--limit", "0",
    ]) == 0
    return str(log)


def test_report_replay_diff_workflow(uni_nt, tmp_path, capsys):
    log = _capture(uni_nt, tmp_path)
    report_path = tmp_path / "report.json"

    rc = cli.main(["obs", "report", log, "--out", str(report_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "distinct statement(s)" in out
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["kind"] == "workload-report"
    assert {s["lang"] for s in report["statements"]} == {"sparql", "cypher"}

    replay_path = tmp_path / "replay.json"
    rc = cli.main([
        "obs", "replay", log, "--data", uni_nt,
        "--repeat", "2", "--out", str(replay_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 result mismatch(es)" in out
    replay = json.loads(replay_path.read_text(encoding="utf-8"))
    assert replay["mismatches"] == 0
    assert replay["replayed"] == 3
    assert all(s["bag_identical"] is True for s in replay["statements"])

    diff_path = tmp_path / "diff.json"
    rc = cli.main([
        "obs", "diff", str(replay_path), str(replay_path),
        "--out", str(diff_path), "--fail-on-regression",
    ])
    assert rc == 0  # self-diff never regresses
    diff = json.loads(diff_path.read_text(encoding="utf-8"))
    assert diff["kind"] == "workload-diff"
    assert diff["regressed"] == 0
    assert diff["compared"] == len(replay["statements"])
    assert all(s["status"] == "ok" for s in diff["statements"])


def test_replay_exits_nonzero_on_result_drift(uni_nt, tmp_path, capsys):
    log = _capture(uni_nt, tmp_path)
    records = obs.read_query_log(log)
    records[0]["result_hash"] = "0" * 16
    tampered = tmp_path / "tampered.jsonl"
    tampered.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        encoding="utf-8",
    )
    rc = cli.main(["obs", "replay", str(tampered), "--data", uni_nt])
    assert rc == 1
    assert "not bag-identical" in capsys.readouterr().err
    rc = cli.main([
        "obs", "replay", str(tampered), "--data", uni_nt,
        "--allow-mismatch",
    ])
    assert rc == 0


def test_diff_fails_on_synthetic_regression(tmp_path, capsys):
    def _report(mean_ms):
        return {
            "kind": "workload-report",
            "statements": [{
                "fingerprint": "aaa", "lang": "sparql", "query": "Q",
                "mean_ms": mean_ms, "q_error_max": None,
            }],
        }

    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(_report(10.0)), encoding="utf-8")
    current.write_text(json.dumps(_report(100.0)), encoding="utf-8")
    assert cli.main(["obs", "diff", str(baseline), str(current)]) == 0
    capsys.readouterr()
    rc = cli.main([
        "obs", "diff", str(baseline), str(current), "--fail-on-regression",
    ])
    assert rc == 1
    assert "regressed" in capsys.readouterr().err


def test_malformed_log_is_a_cli_error(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n", encoding="utf-8")
    rc = cli.main(["obs", "report", str(bad)])
    assert rc == 2
    assert "malformed" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Ops routes
# --------------------------------------------------------------------- #

def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, json.loads(response.read())


@pytest.fixture()
def server():
    instance = obs.OpsServer(port=0)
    instance.start()
    yield instance
    instance.stop()


def test_debug_statements_route(server):
    obs.install_workload()
    _run_reference_workload()
    status, payload = _get_json(server.url + "/debug/statements")
    assert status == 200
    assert len(payload) == 3
    status, top1 = _get_json(server.url + "/debug/statements?top=1")
    assert len(top1) == 1
    status, cypher_only = _get_json(
        server.url + "/debug/statements?lang=cypher"
    )
    assert [s["lang"] for s in cypher_only] == ["cypher"]

    for bad in ("?top=x", "?lang=sql"):
        try:
            urllib.request.urlopen(
                server.url + "/debug/statements" + bad, timeout=5.0
            )
        except urllib.error.HTTPError as error:
            assert error.code == 400
        else:  # pragma: no cover
            pytest.fail("expected a 400")


def test_healthz_reports_plan_cache_store_and_statements(server):
    obs.install_workload()
    engines = _run_reference_workload()  # noqa: F841 (weakly registered)
    registry = obs.get_metrics()
    registry.gauge("repro_store_nodes").set(7)
    registry.gauge("repro_store_edges").set(9)
    registry.gauge("repro_graph_triples").set(40)
    status, payload = _get_json(server.url + "/healthz")
    assert status == 200
    assert payload["store"] == {"nodes": 7, "edges": 9, "triples": 40}
    assert payload["statements"]["statements"] == 3
    caches = payload["plan_cache"]
    assert caches["sparql"]["hits"] >= 1
    assert 0.0 <= caches["sparql"]["occupancy"] <= 1.0
    assert "cypher" in caches


# --------------------------------------------------------------------- #
# Goldens
# --------------------------------------------------------------------- #

def _statements_payload(server) -> str:
    obs.install_workload()
    _run_reference_workload()
    _status, payload = _get_json(server.url + "/debug/statements")
    payload.sort(key=lambda s: (s["lang"], s["fingerprint"]))
    return _mask(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _report_text(tmp_path, capsys) -> str:
    log = tmp_path / "wl.jsonl"
    obs.install_workload(log_path=log)
    _run_reference_workload()
    obs.uninstall_workload()
    capsys.readouterr()
    assert cli.main(["obs", "report", str(log)]) == 0
    lines = _mask_table(capsys.readouterr().out).splitlines()
    # Re-sort the table body: heaviest-first depends on wall time.
    header, body = lines[:3], sorted(lines[3:])
    return "\n".join(header + body) + "\n"


def test_debug_statements_matches_golden(server):
    expected = (GOLDEN_DIR / "statements.json").read_text(encoding="utf-8")
    assert _statements_payload(server) == expected


def test_obs_report_matches_golden(tmp_path, capsys):
    expected = (GOLDEN_DIR / "workload_report.txt").read_text(
        encoding="utf-8"
    )
    assert _report_text(tmp_path, capsys) == expected


def _regenerate() -> None:  # pragma: no cover
    """Rewrite the golden files (run this module as a script)."""

    class _Capsys:
        def readouterr(self):
            import io

            value = sys.stdout.getvalue()
            sys.stdout = io.StringIO()
            return type("Captured", (), {"out": value, "err": ""})()

    import io
    import sys
    import tempfile

    server = obs.OpsServer(port=0)
    server.start()
    try:
        (GOLDEN_DIR / "statements.json").write_text(
            _statements_payload(server), encoding="utf-8"
        )
    finally:
        server.stop()
        obs.uninstall_workload()
    obs.get_metrics().reset()

    real_stdout, sys.stdout = sys.stdout, io.StringIO()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            text = _report_text(Path(tmp), _Capsys())
    finally:
        sys.stdout = real_stdout
    (GOLDEN_DIR / "workload_report.txt").write_text(text, encoding="utf-8")
    print(f"regenerated goldens under {GOLDEN_DIR}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
