"""Metrics registry unit tests and the Prometheus golden rendering."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.labels().value == 5

    def test_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_idempotent_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")


class TestGauge:
    def test_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.labels().value == 7


class TestHistogram:
    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", boundaries=(0.1, 1.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.cumulative() == [(0.1, 2), (1.0, 3), (float("inf"), 4)]
        assert child.count == 4
        assert child.sum == pytest.approx(5.6)

    def test_boundary_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", boundaries=(1.0,))
        histogram.observe(1.0)  # le="1.0" is inclusive
        assert histogram.labels().cumulative()[0] == (1.0, 1)


class TestLabels:
    def test_children_are_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("checks_total")
        counter.inc(2, shape="Person")
        counter.inc(3, shape="City")
        counter.inc(1, shape="Person")
        assert counter.labels(shape="Person").value == 3
        assert counter.labels(shape="City").value == 3

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(1, a="x", b="y")
        assert counter.labels(b="y", a="x").value == 1


class TestSnapshot:
    def test_shape(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", help="runs").inc(2)
        registry.histogram("h_seconds", boundaries=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["runs_total"] == {
            "kind": "counter",
            "help": "runs",
            "series": [{"labels": {}, "value": 2}],
        }
        series = snapshot["h_seconds"]["series"][0]
        assert series["count"] == 1
        assert series["buckets"] == {"1.0": 1, "+Inf": 1}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


#: The golden Prometheus text exposition for the registry built below:
#: families sorted by name, HELP/TYPE headers, labelled children sorted,
#: histogram rendered as cumulative _bucket/_sum/_count rows.
GOLDEN_PROMETHEUS = """\
# HELP repro_query_runs_total queries evaluated
# TYPE repro_query_runs_total counter
repro_query_runs_total{lang="cypher"} 1
repro_query_runs_total{lang="sparql"} 2
# HELP repro_shard_seconds per-shard wall time
# TYPE repro_shard_seconds histogram
repro_shard_seconds_bucket{le="0.1"} 1
repro_shard_seconds_bucket{le="1"} 2
repro_shard_seconds_bucket{le="+Inf"} 3
repro_shard_seconds_sum 4.55
repro_shard_seconds_count 3
# HELP repro_transform_triples_total triples transformed
# TYPE repro_transform_triples_total counter
repro_transform_triples_total 9465
# TYPE repro_workers gauge
repro_workers 2
"""


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_transform_triples_total", help="triples transformed"
    ).inc(9465)
    queries = registry.counter("repro_query_runs_total", help="queries evaluated")
    queries.inc(2, lang="sparql")
    queries.inc(1, lang="cypher")
    registry.gauge("repro_workers").set(2)
    shard = registry.histogram(
        "repro_shard_seconds", boundaries=(0.1, 1.0), help="per-shard wall time"
    )
    for value in (0.05, 0.5, 4.0):
        shard.observe(value)
    return registry


def test_prometheus_golden():
    assert _golden_registry().to_prometheus() == GOLDEN_PROMETHEUS


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c").inc(1, path='a"b\\c\nd')
    assert 'c{path="a\\"b\\\\c\\nd"} 1' in registry.to_prometheus()
