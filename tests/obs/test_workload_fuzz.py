"""Fingerprint-stability fuzz oracle for both query languages.

Property under test: statement fingerprints depend only on query
*structure*.  For randomized queries the oracle checks three claims:

* a query and its literal-renamed twin (same shape, fresh constants)
  share a fingerprint;
* structurally different queries (different predicates / labels /
  pattern counts) get different fingerprints;
* the canonical text round-trips — substituting the lifted parameters
  back in and re-fingerprinting reproduces the original fingerprint,
  canonical text, and parameters (so a captured log is replayable).
"""

from __future__ import annotations

import random

import pytest

from repro import obs

SEED = 1337
ROUNDS = 40

_PREDICATES = [
    "http://example.org/v#name", "http://example.org/v#age",
    "http://example.org/v#worksFor", "http://example.org/v#advisedBy",
    "http://example.org/v#takesCourse", "http://example.org/v#title",
]
_LABELS = ["Person", "Student", "Professor", "Department", "Course"]
_RELS = ["knows", "worksFor", "advisedBy", "takesCourse"]


def _literal(rng: random.Random) -> str:
    kind = rng.randrange(3)
    if kind == 0:
        return f'"s{rng.randrange(10_000)}"'
    if kind == 1:
        return str(rng.randrange(10_000))
    return f"<http://example.org/e/{rng.randrange(10_000)}>"


def _sparql_query(rng: random.Random, shape: random.Random) -> str:
    """Random query; ``shape`` draws structure, ``rng`` draws constants."""
    n_patterns = shape.randrange(1, 4)
    predicates = [shape.choice(_PREDICATES) for _ in range(n_patterns)]
    patterns = []
    for i, predicate in enumerate(predicates):
        obj = f"?o{i}" if shape.random() < 0.5 else _literal(rng)
        patterns.append(f"?s <{predicate}> {obj} .")
    body = " ".join(patterns)
    query = f"SELECT ?s WHERE {{ {body} }}"
    if shape.random() < 0.3:
        query += f" LIMIT {shape.randrange(1, 50)}"
    return query


def _cypher_query(rng: random.Random, shape: random.Random) -> str:
    label = shape.choice(_LABELS)
    rel = shape.choice(_RELS)
    prop = shape.choice(["name", "age", "title"])
    value = _cypher_literal(rng, shape)
    if shape.random() < 0.5:
        return (
            f"MATCH (a:{label} {{{prop}: {value}}})-[:{rel}]->(b) "
            f"RETURN b.{prop} AS out"
        )
    return (
        f"MATCH (a:{label}) WHERE a.{prop} = {value} "
        f"RETURN a.{prop} AS out LIMIT {shape.randrange(1, 20)}"
    )


def _cypher_literal(rng: random.Random, shape: random.Random) -> str:
    if shape.random() < 0.5:
        return f"'v{rng.randrange(10_000)}'"
    return str(rng.randrange(10_000))


def _twins(builder, structure_seed: int):
    """Two queries with the same structure but independent constants."""
    shape_a = random.Random(structure_seed)
    shape_b = random.Random(structure_seed)
    rng_a = random.Random(structure_seed * 31 + 1)
    rng_b = random.Random(structure_seed * 31 + 2)
    return builder(rng_a, shape_a), builder(rng_b, shape_b)


@pytest.mark.parametrize("lang,builder", [
    ("sparql", _sparql_query),
    ("cypher", _cypher_query),
])
def test_literal_renamed_twins_share_fingerprints(lang, builder):
    for round_no in range(ROUNDS):
        query_a, query_b = _twins(builder, SEED + round_no)
        fp_a, canon_a, _ = obs.fingerprint_query(lang, query_a)
        fp_b, canon_b, _ = obs.fingerprint_query(lang, query_b)
        assert fp_a == fp_b, (query_a, query_b)
        assert canon_a == canon_b, (query_a, query_b)


@pytest.mark.parametrize("lang,builder", [
    ("sparql", _sparql_query),
    ("cypher", _cypher_query),
])
def test_distinct_structures_get_distinct_fingerprints(lang, builder):
    """Across the fuzzed space, canonical text and fingerprint agree:
    same canonical text <=> same fingerprint (no collisions observed)."""
    by_canonical: dict[str, str] = {}
    by_fingerprint: dict[str, str] = {}
    for round_no in range(ROUNDS):
        rng = random.Random(SEED * 7 + round_no)
        shape = random.Random(SEED * 13 + round_no)
        query = builder(rng, shape)
        fp, canonical, _ = obs.fingerprint_query(lang, query)
        if canonical in by_canonical:
            assert by_canonical[canonical] == fp
        else:
            by_canonical[canonical] = fp
        if fp in by_fingerprint:
            assert by_fingerprint[fp] == canonical, "fingerprint collision"
        else:
            by_fingerprint[fp] = canonical
    assert len(by_canonical) > 1  # the generator actually varies structure


@pytest.mark.parametrize("lang,builder", [
    ("sparql", _sparql_query),
    ("cypher", _cypher_query),
])
def test_round_trip_substitution_is_stable(lang, builder):
    for round_no in range(ROUNDS):
        rng = random.Random(SEED * 17 + round_no)
        shape = random.Random(SEED * 19 + round_no)
        query = builder(rng, shape)
        fp, canonical, params = obs.fingerprint_query(lang, query)
        rebuilt = obs.substitute_params(canonical, params)
        fp2, canonical2, params2 = obs.fingerprint_query(lang, rebuilt)
        assert (fp2, canonical2, params2) == (fp, canonical, params), query
