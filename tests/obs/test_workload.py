"""The workload-intelligence subsystem: fingerprints, stats, replay, diff.

Covers the :mod:`repro.obs.workload` layers directly: statement
normalization and fingerprint stability, the bounded per-fingerprint
registry, query-log capture and offline aggregation, replay with
bag-identity verification, and report diffing.  The engine-integration
and CLI surfaces live in ``test_workload_cli.py``.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.datasets.university import university_graph, university_shapes
from repro.core.pipeline import S3PG
from repro.pg.store import PropertyGraphStore
from repro.query.cypher.evaluator import CypherEngine
from repro.query.sparql.evaluator import SparqlEngine

UNI = "http://example.org/university#"


def _sparql(pattern: str) -> str:
    return f"SELECT ?s WHERE {{ ?s <{UNI}name> {pattern} }}"


# --------------------------------------------------------------------- #
# Normalization & fingerprints
# --------------------------------------------------------------------- #

def test_sparql_literal_rename_shares_fingerprint():
    fp_a, canon_a, params_a = obs.fingerprint_query(
        "sparql", _sparql('"Alice"')
    )
    fp_b, canon_b, params_b = obs.fingerprint_query(
        "sparql", _sparql('"Bob"')
    )
    assert fp_a == fp_b
    assert canon_a == canon_b
    assert params_a != params_b
    assert '"Alice"' in params_a[0]


def test_sparql_structural_difference_changes_fingerprint():
    fp_a, _, _ = obs.fingerprint_query("sparql", _sparql('"Alice"'))
    fp_b, _, _ = obs.fingerprint_query(
        "sparql",
        f"SELECT ?s WHERE {{ ?s <{UNI}age> \"Alice\" }}",
    )
    assert fp_a != fp_b  # predicate is structural, not a parameter


def test_sparql_variable_names_are_normalized():
    fp_a, _, _ = obs.fingerprint_query(
        "sparql", f"SELECT ?who WHERE {{ ?who <{UNI}name> ?n }}"
    )
    fp_b, _, _ = obs.fingerprint_query(
        "sparql", f"SELECT ?x WHERE {{ ?x <{UNI}name> ?y }}"
    )
    assert fp_a == fp_b


def test_cypher_literal_rename_shares_fingerprint():
    fp_a, canon, params_a = obs.fingerprint_query(
        "cypher", "MATCH (p:Person {name: 'Alice'}) RETURN p.age AS a"
    )
    fp_b, _, params_b = obs.fingerprint_query(
        "cypher", "MATCH (q:Person {name: 'Bob'}) RETURN q.age AS b"
    )
    assert fp_a == fp_b
    assert params_a != params_b
    assert "$1" in canon


def test_cypher_label_is_structural():
    fp_a, _, _ = obs.fingerprint_query(
        "cypher", "MATCH (p:Person) RETURN p.name AS n"
    )
    fp_b, _, _ = obs.fingerprint_query(
        "cypher", "MATCH (p:Robot) RETURN p.name AS n"
    )
    assert fp_a != fp_b


@pytest.mark.parametrize("lang,text", [
    ("sparql", _sparql('"Alice"')),
    ("cypher", "MATCH (p:Person {name: 'Alice'})-[:knows]->(q) "
               "RETURN q.name AS n LIMIT 5"),
])
def test_substitution_round_trip_is_fingerprint_stable(lang, text):
    fp, canonical, params = obs.fingerprint_query(lang, text)
    rebuilt = obs.substitute_params(canonical, params)
    fp2, canonical2, params2 = obs.fingerprint_query(lang, rebuilt)
    assert fp2 == fp
    assert canonical2 == canonical
    assert params2 == params


def test_substitute_params_rejects_out_of_range():
    with pytest.raises(ValueError):
        obs.substitute_params("SELECT $2", ("only-one",))


# --------------------------------------------------------------------- #
# The bounded registry
# --------------------------------------------------------------------- #

def test_registry_aggregates_executions():
    tracker = obs.WorkloadTracker()
    text = _sparql('"Alice"')
    tracker.record("sparql", text, None, 0.010, 3, cache_hit=True,
                   q_error=2.0)
    tracker.record("sparql", _sparql('"Bob"'), None, 0.030, 5,
                   cache_hit=False, q_error=4.0)
    (stats,) = tracker.snapshot()
    assert stats["calls"] == 2
    assert stats["rows_total"] == 8
    assert stats["total_ms"] == pytest.approx(40.0, rel=0.01)
    assert stats["mean_ms"] == pytest.approx(20.0, rel=0.01)
    assert stats["min_ms"] == pytest.approx(10.0, rel=0.01)
    assert stats["max_ms"] == pytest.approx(30.0, rel=0.01)
    assert stats["plan_cache_hits"] == 1
    assert stats["plan_cache_misses"] == 1
    assert stats["q_error_max"] == 4.0
    assert stats["q_error_mean"] == pytest.approx(3.0)
    assert 0 < stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]


def test_registry_evicts_least_recent_beyond_capacity():
    tracker = obs.WorkloadTracker(capacity=2)
    queries = [_sparql(f'"p{i}"') for i in range(3)]
    # Three *structurally identical* queries share one fingerprint, so
    # force distinct ones through different predicates.
    queries = [
        f"SELECT ?s WHERE {{ ?s <{UNI}p{i}> \"x\" }}" for i in range(3)
    ]
    for text in queries:
        tracker.record("sparql", text, None, 0.001, 1)
    assert tracker.evicted == 1
    assert len(tracker.snapshot()) == 2
    assert tracker.summary()["calls"] == 3


# --------------------------------------------------------------------- #
# Capture log + offline aggregation
# --------------------------------------------------------------------- #

def test_capture_log_and_report(tmp_path):
    log = tmp_path / "wl.jsonl"
    tracker = obs.install_workload(log_path=log, sample_every=2)
    text = _sparql('"Alice"')
    for i in range(4):
        obs.record_statement("sparql", text, None, 0.002, 1,
                             cache_hit=bool(i), q_error=1.5)
    obs.log_workload_event({"lang": "cdc", "kind": "revalidate"})
    obs.uninstall_workload()

    records = obs.read_query_log(log)
    assert len(records) == 3  # stride 2 over 4 executions + 1 event
    queries = [r for r in records if r["lang"] == "sparql"]
    assert len(queries) == 2
    assert all("fingerprint" in r and "params" in r for r in queries)
    assert queries[0]["duration_ms"] == pytest.approx(2.0)

    report = obs.report_from_log(records, source=str(log))
    assert report["kind"] == "workload-report"
    assert report["records"] == 3
    assert report["events"] == 1
    (stats,) = report["statements"]
    assert stats["calls"] == 2  # only the sampled executions are offline
    assert tracker.summary()["logged"] == 3


def test_read_query_log_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"lang": "sparql"}\nnot json\n', encoding="utf-8")
    with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
        obs.read_query_log(bad)
    bad.write_text('[1, 2, 3]\n', encoding="utf-8")
    with pytest.raises(ValueError, match=r"bad\.jsonl:1"):
        obs.read_query_log(bad)


# --------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------- #

@pytest.fixture()
def uni():
    graph = university_graph()
    result = S3PG().transform(graph, university_shapes())
    return graph, PropertyGraphStore(result.graph)


def test_replay_is_bag_identical(tmp_path, uni):
    graph, store = uni
    log = tmp_path / "wl.jsonl"
    obs.install_workload(log_path=log)
    SparqlEngine(graph).query(
        f"SELECT ?s ?n WHERE {{ ?s <{UNI}name> ?n }}"
    )
    CypherEngine(store).query(
        "MATCH (p:uni_Professor) RETURN p.iri AS iri"
    )
    obs.uninstall_workload()

    records = obs.read_query_log(log)
    assert {r["lang"] for r in records} == {"sparql", "cypher"}
    report = obs.replay_workload(
        records, graph=graph, store=store, repeat=2, source=str(log)
    )
    assert report["replayed"] == 2
    assert report["repeat"] == 2
    assert report["mismatches"] == 0
    assert all(s["bag_identical"] is True for s in report["statements"])
    assert all(s["calls"] == 2 for s in report["statements"])


def test_replay_detects_result_drift(tmp_path, uni):
    graph, store = uni
    log = tmp_path / "wl.jsonl"
    obs.install_workload(log_path=log)
    SparqlEngine(graph).query(
        f"SELECT ?s ?n WHERE {{ ?s <{UNI}name> ?n }}"
    )
    obs.uninstall_workload()

    records = obs.read_query_log(log)
    records[0]["result_hash"] = "0" * 16  # simulate engine regression
    report = obs.replay_workload(records, graph=graph, source=str(log))
    assert report["mismatches"] == 1
    assert report["statements"][0]["bag_identical"] is False


def test_replay_without_needed_store_raises(tmp_path, uni):
    graph, store = uni
    log = tmp_path / "wl.jsonl"
    obs.install_workload(log_path=log)
    CypherEngine(store).query("MATCH (p:uni_Professor) RETURN p.iri AS i")
    obs.uninstall_workload()
    records = obs.read_query_log(log)
    with pytest.raises(ValueError, match="Cypher"):
        obs.replay_workload(records, graph=graph, store=None)


# --------------------------------------------------------------------- #
# Diffing
# --------------------------------------------------------------------- #

def _report(statements) -> dict:
    return {"kind": "workload-report", "statements": statements}


def _stmt(fingerprint, mean_ms, q_error=None, lang="sparql") -> dict:
    return {
        "fingerprint": fingerprint, "lang": lang,
        "query": f"Q-{fingerprint}", "mean_ms": mean_ms,
        "q_error_max": q_error,
    }


def test_diff_flags_latency_and_q_error_regressions():
    baseline = _report([
        _stmt("aaa", 10.0, q_error=2.0),
        _stmt("bbb", 5.0),
        _stmt("ddd", 1.0),
    ])
    current = _report([
        _stmt("aaa", 30.0, q_error=2.0),   # 3x slower
        _stmt("bbb", 5.0, q_error=None),
        _stmt("ccc", 7.0),                 # new statement
    ])
    diff = obs.diff_reports(baseline, current)
    assert diff["kind"] == "workload-diff"
    assert diff["compared"] == 4
    assert diff["regressed"] == 1
    assert diff["added"] == 1
    assert diff["removed"] == 1
    by_fp = {entry["fingerprint"]: entry for entry in diff["statements"]}
    assert by_fp["aaa"]["status"] == "regressed"
    assert by_fp["aaa"]["flags"] == ["latency"]
    assert by_fp["aaa"]["latency_ratio"] == 3.0
    assert by_fp["bbb"]["status"] == "ok"
    assert by_fp["ccc"]["status"] == "added"
    assert by_fp["ddd"]["status"] == "removed"
    # Regressions sort first.
    assert diff["statements"][0]["fingerprint"] == "aaa"

    worse_q = _report([
        _stmt("aaa", 10.0, q_error=8.0),
        _stmt("bbb", 5.0),
        _stmt("ddd", 1.0),
    ])
    diff = obs.diff_reports(baseline, worse_q)
    assert diff["statements"][0]["flags"] == ["q_error"]


def test_diff_min_ms_floor_suppresses_micro_noise():
    baseline = _report([_stmt("aaa", 0.010)])
    current = _report([_stmt("aaa", 0.050)])  # 5x, but both tiny
    diff = obs.diff_reports(baseline, current, min_ms=0.1)
    assert diff["regressed"] == 0
    diff = obs.diff_reports(baseline, current, min_ms=0.01)
    assert diff["regressed"] == 1


# --------------------------------------------------------------------- #
# Plan-cache registry + engine integration
# --------------------------------------------------------------------- #

def test_engines_feed_statements_and_plan_caches(uni):
    graph, store = uni
    obs.install_workload()
    sparql = SparqlEngine(graph)
    cypher = CypherEngine(store)
    query = f"SELECT ?s ?n WHERE {{ ?s <{UNI}name> ?n }}"
    sparql.query(query)
    sparql.query(query)  # second run hits the plan cache
    cypher.query("MATCH (p:uni_Professor) RETURN p.iri AS iri")

    snapshots = obs.get_workload().snapshot()
    by_lang = {s["lang"]: s for s in snapshots}
    assert by_lang["sparql"]["calls"] == 2
    assert by_lang["sparql"]["plan_cache_hits"] >= 1
    assert by_lang["cypher"]["calls"] == 1

    caches = obs.plan_cache_stats()
    assert caches["sparql"]["entries"] >= 1
    assert caches["sparql"]["hits"] >= 1
    assert 0.0 <= caches["sparql"]["occupancy"] <= 1.0
    assert "cypher" in caches

    registry = obs.get_metrics()
    calls = registry.family("repro_statement_calls_total")
    assert calls is not None
    counted = {labels: c.value for labels, c in calls.children()}
    assert counted[(("lang", "sparql"),)] == 2


def test_result_hashes_ignore_variable_names(uni):
    graph, _ = uni
    engine = SparqlEngine(graph)
    rows_a = engine.query(f"SELECT ?s ?n WHERE {{ ?s <{UNI}name> ?n }}")
    rows_b = engine.query(f"SELECT ?x ?y WHERE {{ ?x <{UNI}name> ?y }}")
    assert obs.sparql_result_hash(rows_a) == obs.sparql_result_hash(rows_b)
