"""End-to-end observability: traced runs across the instrumented layers.

Covers the acceptance path of the subsystem: a traced ``--workers 2``
transformation must produce a Chrome trace with the coordinator phases
*and* the per-shard worker spans re-parented under the coordinator's
execute span, plus a Prometheus exposition with the transform counters.
"""

from __future__ import annotations

import json

import pytest

from repro import obs, transform
from repro.cli import main
from repro.datasets import (
    UNIVERSITY_DATA_TTL,
    university_graph,
    university_shapes,
)
from repro.query.cypher.evaluator import CypherEngine
from repro.query.sparql.evaluator import SparqlEngine
from repro.query.translate import translate_sparql_to_cypher
from repro.pg.store import PropertyGraphStore
from repro.rdf import serialize_ntriples
from repro.shacl.validator import validate as shacl_validate

_SPARQL = """
PREFIX uni: <http://example.org/university#>
SELECT ?name WHERE { ?s a uni:Student . ?s uni:name ?name }
"""


def _names(tracer) -> dict[str, list]:
    names: dict[str, list] = {}
    for span in tracer.finished():
        names.setdefault(span.name, []).append(span)
    return names


class TestTracedTransform:
    def test_serial_transform_spans_and_metrics(self, uni_graph, uni_shapes):
        obs.configure()
        transform(uni_graph, uni_shapes)
        names = _names(obs.get_tracer())
        assert "s3pg.transform" in names
        assert "s3pg.schema_transform" in names
        assert "s3pg.data_transform" in names
        root = names["s3pg.transform"][0]
        for child_name in ("s3pg.schema_transform", "s3pg.data_transform"):
            assert names[child_name][0].parent_id == root.span_id
        assert root.attributes["triples"] == len(uni_graph)
        assert root.attributes["nodes"] > 0

        snapshot = obs.get_metrics().snapshot()
        assert snapshot["repro_transform_runs_total"]["series"][0]["value"] == 1
        assert (
            snapshot["repro_transform_triples_total"]["series"][0]["value"]
            == len(uni_graph)
        )
        phases = {
            tuple(series["labels"].items())
            for series in snapshot["repro_transform_seconds"]["series"]
        }
        assert (("phase", "schema"),) in phases
        assert (("phase", "data"),) in phases

    def test_parallel_worker_spans_reparent(self, uni_graph, uni_shapes):
        obs.configure()
        transform(uni_graph, uni_shapes, parallel=2)
        names = _names(obs.get_tracer())
        for phase in ("engine.run", "engine.partition", "engine.schema",
                      "engine.execute", "engine.merge"):
            assert phase in names, f"missing {phase}"
        execute = names["engine.execute"][0]
        shards = names.get("engine.shard", [])
        assert len(shards) >= 1
        for shard in shards:
            assert shard.parent_id == execute.span_id
            assert shard.trace_id == obs.get_tracer().trace_id
        # Worker-internal phases hang off their shard span.
        shard_ids = {shard.span_id for shard in shards}
        assert any(
            span.parent_id in shard_ids
            for span in names.get("shard.phase1_nodes", [])
        )


class TestTracedValidatorAndQueries:
    def test_validator_spans_and_metrics(self, uni_graph, uni_shapes):
        obs.configure()
        report = shacl_validate(uni_graph, uni_shapes)
        names = _names(obs.get_tracer())
        span = names["shacl.validate"][0]
        assert span.attributes["entities"] == report.checked_entities
        assert span.attributes["memo_misses"] > 0

        snapshot = obs.get_metrics().snapshot()
        checks = snapshot["repro_validator_checks_total"]["series"]
        assert checks and all(s["labels"].get("shape") for s in checks)

    def test_query_engines_spans_and_metrics(self, uni_graph, uni_result):
        obs.configure()
        rows = SparqlEngine(uni_graph).query(_SPARQL)
        cypher = translate_sparql_to_cypher(_SPARQL, uni_result.mapping)
        CypherEngine(PropertyGraphStore(uni_result.graph)).query(cypher)

        names = _names(obs.get_tracer())
        sparql_span = names["sparql.evaluate"][0]
        assert sparql_span.attributes["rows"] == len(rows)
        assert sparql_span.attributes["bgp_matches"] > 0
        assert sum(sparql_span.attributes["selectivity_profile"]) > 0
        cypher_span = names["cypher.evaluate"][0]
        assert cypher_span.attributes["rows"] == len(rows)
        assert "cypher.match" in names
        assert "cypher.return" in names

        snapshot = obs.get_metrics().snapshot()
        langs = {
            series["labels"]["lang"]
            for series in snapshot["repro_query_runs_total"]["series"]
        }
        assert langs == {"sparql", "cypher"}


class TestCliArtifacts:
    @pytest.fixture
    def nt_file(self, tmp_path):
        path = tmp_path / "data.nt"
        path.write_text(
            serialize_ntriples(university_graph()), encoding="utf-8"
        )
        return path

    def test_traced_parallel_transform_cli(self, nt_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        code = main([
            "transform", str(nt_file), "-o", str(tmp_path / "out"),
            "--workers", "2",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ])
        assert code == 0
        assert "wrote trace" in capsys.readouterr().out

        events = json.loads(trace_path.read_text(encoding="utf-8"))["traceEvents"]
        names = {event["name"] for event in events}
        assert {"cli.transform", "s3pg.transform", "engine.run",
                "engine.execute", "engine.shard"} <= names
        execute = next(e for e in events if e["name"] == "engine.execute")
        for shard in (e for e in events if e["name"] == "engine.shard"):
            assert shard["args"]["parent_id"] == execute["args"]["span_id"]

        metrics_text = metrics_path.read_text(encoding="utf-8")
        for name in ("repro_transform_runs_total",
                     "repro_transform_triples_total",
                     "repro_engine_shards_total",
                     "repro_parse_triples_total"):
            assert name in metrics_text, f"missing {name}"
        # The CLI must leave the process clean for the next invocation.
        assert not obs.enabled()
        assert obs.get_metrics().snapshot() == {}

    def test_jsonl_trace_and_json_metrics_suffixes(self, nt_file, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "transform", str(nt_file), "-o", str(tmp_path / "out"),
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ]) == 0
        records = [
            json.loads(line)
            for line in trace_path.read_text(encoding="utf-8").splitlines()
        ]
        assert any(r["name"] == "s3pg.transform" for r in records)
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert "repro_transform_runs_total" in snapshot

    def test_profile_command(self, nt_file, capsys):
        code = main(["profile", str(nt_file), "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "self s" in out
        assert "s3pg.data_transform" in out
        assert not obs.enabled()

    def test_validate_with_metrics(self, tmp_path, capsys):
        from repro.datasets import UNIVERSITY_SHAPES_TTL

        data = tmp_path / "data.ttl"
        data.write_text(UNIVERSITY_DATA_TTL, encoding="utf-8")
        shapes = tmp_path / "shapes.ttl"
        shapes.write_text(UNIVERSITY_SHAPES_TTL, encoding="utf-8")
        metrics_path = tmp_path / "metrics.prom"
        main([
            "validate", str(data), str(shapes),
            "--metrics", str(metrics_path),
        ])
        text = metrics_path.read_text(encoding="utf-8")
        assert "repro_validator_checks_total" in text
        assert "repro_parse_shapes_total" in text


class TestProfileRendering:
    def test_render_profile_self_time(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        table = obs.render_profile(tracer.finished(), top=10)
        lines = table.splitlines()
        assert lines[0].split() == ["span", "count", "total", "s",
                                    "self", "s", "self", "%"]
        assert len(lines) == 3
        rows = obs.aggregate_self_times(tracer.finished())
        outer = next(row for row in rows if row.name == "outer")
        inner = next(row for row in rows if row.name == "inner")
        assert outer.self_s == pytest.approx(
            outer.total_s - inner.total_s, rel=1e-6
        )

    def test_render_profile_empty(self):
        assert obs.render_profile([]) == "no spans recorded"
