"""The HTTP ops endpoint: routes, payloads, and a live end-to-end scrape.

The first half exercises :class:`~repro.obs.OpsServer` directly on an
ephemeral port; the second drives the real ``repro serve`` CLI with
``--ops-port`` in a background thread and scrapes ``/metrics`` and
``/debug/slow`` while the process holds its post-replay grace period —
the same sequence the CI smoke job runs against a delta log.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import cli, obs
from repro.cdc.changefeed import Delta, write_delta_log
from repro.datasets.university import university_graph
from repro.rdf.ntriples import write_ntriples


def _get(url: str, timeout: float = 5.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:  # non-2xx still has a body
        return error.code, dict(error.headers), error.read()


def _get_json(url: str):
    status, _headers, body = _get(url)
    return status, json.loads(body)


@pytest.fixture()
def server():
    instance = obs.OpsServer(port=0)  # ephemeral port
    instance.start()
    yield instance
    instance.stop()


# --------------------------------------------------------------------- #
# Direct route tests
# --------------------------------------------------------------------- #

def test_metrics_route_serves_prometheus_text(server):
    obs.get_metrics().counter("repro_test_total", help="x").inc(3)
    status, headers, body = _get(server.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    text = body.decode()
    assert "# TYPE repro_test_total counter" in text
    assert "repro_test_total 3" in text


def test_healthz_reports_recorder_and_custom_health(server):
    obs.install_recorder(span_capacity=16)
    server.health = lambda: {"watermark": 42}
    status, document = _get_json(server.url + "/healthz")
    assert status == 200
    assert document["status"] == "ok"
    assert document["watermark"] == 42
    assert document["recorder"]["span_capacity"] == 16


def test_healthz_degrades_on_health_callback_failure(server):
    server.health = lambda: 1 / 0
    status, document = _get_json(server.url + "/healthz")
    assert status == 200  # liveness still answers
    assert document["status"] == "degraded"
    assert document["health_error"].startswith("ZeroDivisionError")


def test_debug_slow_and_trace_routes(server):
    obs.install_recorder(slow_threshold_ms=0.0)
    with obs.span("unit.op"):
        pass
    obs.record_query("sparql", "SELECT 1", 0.01, rows=2,
                     plan=lambda: {"op": "Scan"})
    status, slow = _get_json(server.url + "/debug/slow")
    assert status == 200
    assert len(slow) == 1
    assert slow[0]["kind"] == "query" and slow[0]["plan"] == {"op": "Scan"}
    status, trace = _get_json(server.url + "/debug/trace?limit=10")
    assert status == 200
    assert [record["name"] for record in trace] == ["unit.op"]
    status, _ = _get_json(server.url + "/debug/trace?limit=nope")
    assert status == 400


def test_debug_routes_empty_without_recorder(server):
    assert _get_json(server.url + "/debug/slow") == (200, [])
    assert _get_json(server.url + "/debug/trace") == (200, [])


def test_root_index_and_404(server):
    status, document = _get_json(server.url + "/")
    assert status == 200
    assert "/metrics" in document["routes"]
    status, document = _get_json(server.url + "/nope")
    assert status == 404


def test_quitquitquit_sets_shutdown_event(server):
    assert not server.shutdown_requested.is_set()
    status, document = _get_json(server.url + "/quitquitquit")
    assert status == 200 and document["shutdown"] is True
    assert server.wait(timeout=1.0)


# --------------------------------------------------------------------- #
# Live end-to-end scrape through the CLI
# --------------------------------------------------------------------- #

def _write_cdc_fixture(tmp_path):
    """Base graph + a held-back tail replayed as a delta log."""
    triples = sorted(university_graph(), key=lambda t: t.n3())
    base, held = triples[:-6], triples[-6:]
    base_path = tmp_path / "base.nt"
    write_ntriples(base, base_path)
    deltas = [
        Delta(seq=i, added=(triple,)) for i, triple in enumerate(held, 1)
    ]
    log_path = tmp_path / "deltas.jsonl"
    write_delta_log(deltas, log_path)
    return base_path, log_path, len(deltas)


def _free_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_serve_once_scrapes_live(tmp_path, capsys):
    base_path, log_path, n_deltas = _write_cdc_fixture(tmp_path)
    port = _free_port()
    base_url = f"http://127.0.0.1:{port}"
    exit_code = {}
    argv = [
        "serve", "--source", str(log_path), "--data", str(base_path),
        "--once", "--ops-port", str(port), "--slow-ms", "0",
        "--ops-grace-s", "60",
    ]

    def run():
        exit_code["value"] = cli.main(argv)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        # Poll /healthz until the replay has applied every delta (the
        # grace period keeps the endpoint up after the log hits EOF).
        document = None
        for _ in range(200):
            try:
                _status, document = _get_json(base_url + "/healthz")
                if document.get("watermark") == n_deltas:
                    break
            except (urllib.error.URLError, ConnectionError):
                pass
            thread.join(0.05)
        assert document is not None, "ops endpoint never came up"
        assert document["status"] == "ok"
        assert document["watermark"] == n_deltas
        assert document["deltas_applied"] == n_deltas
        assert document["recorder"]["slow_captured"] >= 1

        status, _headers, body = _get(base_url + "/metrics")
        assert status == 200
        exposition = body.decode()
        for family in (
            "repro_cdc_deltas_total",
            "repro_cdc_delta_latency_seconds",
            "repro_cdc_batch_seconds",
            "repro_cdc_staleness_seconds",
            "repro_cdc_queue_depth",
            "repro_query_latency_seconds",
            "repro_plan_q_error",
            "repro_slow_ops_total",
        ):
            assert f"# TYPE {family}" in exposition, family
        assert f'repro_cdc_deltas_total{{status="applied"}} {n_deltas}' \
            in exposition

        _status, slow = _get_json(base_url + "/debug/slow")
        assert any(record["kind"] == "cdc.batch" for record in slow)

        status, document = _get_json(base_url + "/quitquitquit")
        assert status == 200 and document["shutdown"] is True
    finally:
        # Unblock the grace period even on assertion failure.
        try:
            urllib.request.urlopen(base_url + "/quitquitquit", timeout=1.0)
        except (urllib.error.URLError, ConnectionError):
            pass
        thread.join(timeout=15.0)

    assert not thread.is_alive(), "serve did not exit after /quitquitquit"
    assert exit_code.get("value") == 0
    assert obs.get_recorder() is None  # serve uninstalled its recorder
    output = capsys.readouterr().out
    assert f"applied {n_deltas} delta(s)" in output
    assert "holding ops endpoint" in output
