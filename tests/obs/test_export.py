"""Exporter tests: golden-file JSONL / Chrome-trace / Prometheus snapshots.

The golden files under ``tests/obs/golden/`` pin the exact bytes the
exporters produce for a deterministic span list and metrics registry, so
format drift (field renames, ordering changes, float formatting) shows
up as a readable diff.  Regenerate them by running this module as a
script: ``PYTHONPATH=src python tests/obs/test_export.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import (
    MetricsRegistry,
    Span,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_metrics,
    write_trace,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def _sample_spans() -> list[Span]:
    """A deterministic span tree: root, child, errored child, open span."""
    return [
        Span(
            name="engine.run", span_id="s1-1", trace_id="t1", parent_id=None,
            start_ns=1_000_000, end_ns=5_000_000,
            attributes={"triples": 10, "workers": 2}, pid=100, tid=7,
        ),
        Span(
            name="engine.partition", span_id="s1-2", trace_id="t1",
            parent_id="s1-1", start_ns=1_250_000, end_ns=2_250_000,
            pid=100, tid=7,
        ),
        Span(
            name="rdf.parse_ntriples", span_id="s1-3", trace_id="t1",
            parent_id="s1-1", start_ns=2_500_000, end_ns=4_500_000,
            attributes={"exception": "ValueError"}, status="error",
            pid=100, tid=7,
        ),
        # Still open: must appear in JSONL (duration 0) but not in the
        # Chrome trace (only finished work is drawn).
        Span(
            name="engine.open", span_id="s1-4", trace_id="t1",
            parent_id="s1-1", start_ns=4_600_000, end_ns=None,
            pid=100, tid=7,
        ),
    ]


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_transform_triples_total", help="triples transformed"
    ).inc(9465)
    runs = registry.counter("repro_query_runs_total", help="queries evaluated")
    runs.inc(2, lang="sparql")
    histogram = registry.histogram(
        "repro_shard_seconds", boundaries=(0.1, 1.0), help="per-shard wall time"
    )
    for value in (0.05, 0.5, 4.0):
        histogram.observe(value)
    return registry


def test_jsonl_matches_golden():
    expected = (GOLDEN_DIR / "trace.jsonl").read_text(encoding="utf-8")
    assert spans_to_jsonl(_sample_spans()) == expected


def test_jsonl_lines_are_valid_json():
    lines = spans_to_jsonl(_sample_spans()).splitlines()
    records = [json.loads(line) for line in lines]
    assert len(records) == 4
    assert records[0]["name"] == "engine.run"
    assert records[0]["duration_ns"] == 4_000_000
    assert records[3]["duration_ns"] == 0  # open span


def test_chrome_trace_matches_golden():
    expected = json.loads((GOLDEN_DIR / "trace.json").read_text(encoding="utf-8"))
    assert spans_to_chrome_trace(_sample_spans()) == expected


def test_chrome_trace_structure():
    document = spans_to_chrome_trace(_sample_spans())
    events = document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"
    assert len(events) == 3  # the open span is skipped
    assert [event["ts"] for event in events] == sorted(
        event["ts"] for event in events
    )
    root = events[0]
    assert root == {
        "name": "engine.run",
        "cat": "engine",
        "ph": "X",
        "ts": 0.0,       # rebased to the earliest span
        "dur": 4000.0,   # microseconds
        "pid": 100,
        "tid": 7,
        "args": {"triples": 10, "workers": 2, "span_id": "s1-1"},
    }
    errored = next(e for e in events if e["name"] == "rdf.parse_ntriples")
    assert errored["args"]["status"] == "error"
    assert errored["args"]["parent_id"] == "s1-1"


def test_prometheus_matches_golden():
    expected = (GOLDEN_DIR / "metrics.prom").read_text(encoding="utf-8")
    assert _sample_registry().to_prometheus() == expected


def test_write_trace_dispatches_on_suffix(tmp_path):
    spans = _sample_spans()
    write_trace(spans, tmp_path / "trace.jsonl")
    write_trace(spans, tmp_path / "trace.json")
    jsonl = (tmp_path / "trace.jsonl").read_text(encoding="utf-8")
    assert all(json.loads(line) for line in jsonl.splitlines())
    chrome = json.loads((tmp_path / "trace.json").read_text(encoding="utf-8"))
    assert "traceEvents" in chrome


def test_write_metrics_dispatches_on_suffix(tmp_path):
    registry = _sample_registry()
    write_metrics(registry, tmp_path / "metrics.prom")
    write_metrics(registry, tmp_path / "metrics.json")
    assert "# TYPE" in (tmp_path / "metrics.prom").read_text(encoding="utf-8")
    snapshot = json.loads((tmp_path / "metrics.json").read_text(encoding="utf-8"))
    assert snapshot == registry.snapshot()


def _regenerate() -> None:  # pragma: no cover
    GOLDEN_DIR.mkdir(exist_ok=True)
    (GOLDEN_DIR / "trace.jsonl").write_text(
        spans_to_jsonl(_sample_spans()), encoding="utf-8"
    )
    (GOLDEN_DIR / "trace.json").write_text(
        json.dumps(spans_to_chrome_trace(_sample_spans()), indent=1) + "\n",
        encoding="utf-8",
    )
    (GOLDEN_DIR / "metrics.prom").write_text(
        _sample_registry().to_prometheus(), encoding="utf-8"
    )
    print(f"regenerated golden files in {GOLDEN_DIR}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
