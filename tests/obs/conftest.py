"""Shared state hygiene for the observability tests.

The tracer and metrics registry are process-global; every test in this
package runs against a clean slate and leaves one behind.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.uninstall_recorder()
    obs.uninstall_workload()
    obs.disable()
    obs.get_metrics().reset()
    yield
    obs.uninstall_recorder()
    obs.uninstall_workload()
    obs.disable()
    obs.get_metrics().reset()
