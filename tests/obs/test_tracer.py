"""Tracer unit tests: nesting, attributes, errors, threads, adoption."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import Span, SpanContext, Tracer


def _by_name(tracer: Tracer) -> dict[str, Span]:
    spans = {}
    for span in tracer.finished():
        assert span.name not in spans, "helper expects unique names"
        spans[span.name] = span
    return spans


class TestNesting:
    def test_child_parents_on_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        spans = _by_name(tracer)
        assert spans["first"].parent_id == spans["outer"].span_id
        assert spans["second"].parent_id == spans["outer"].span_id

    def test_finish_order_is_innermost_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]

    def test_explicit_parent_overrides_contextvar(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        with tracer.span("active"):
            with tracer.span("detached", parent=root) as detached:
                assert detached.parent_id == root.span_id

    def test_durations_are_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = _by_name(tracer)
        assert spans["outer"].duration_ns >= spans["inner"].duration_ns > 0
        assert spans["outer"].duration_s >= spans["inner"].duration_s


class TestAttributes:
    def test_open_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("work", triples=10) as span:
            span.set("nodes", 4)
        finished = tracer.finished()[0]
        assert finished.attributes == {"triples": 10, "nodes": 4}

    def test_incr_accumulates(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.incr("hits")
            span.incr("hits", 2)
        assert tracer.finished()[0].attributes["hits"] == 3


class TestErrors:
    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        spans = _by_name(tracer)
        assert spans["inner"].status == "error"
        assert spans["inner"].attributes["exception"] == "ValueError"
        assert spans["outer"].status == "error"
        assert spans["inner"].end_ns is not None
        assert spans["outer"].end_ns is not None

    def test_current_span_restored_after_error(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with pytest.raises(RuntimeError):
                with tracer.span("inner"):
                    raise RuntimeError
            assert obs.current_span() is outer
        assert obs.current_span() is None


class TestThreadIsolation:
    def test_threads_do_not_inherit_or_leak_parents(self):
        tracer = Tracer()
        seen: dict[str, str | None] = {}
        barrier = threading.Barrier(2)

        def worker(label: str):
            # A fresh thread starts with no current span...
            seen[f"{label}-before"] = obs.current_span()
            with tracer.span(f"thread.{label}") as span:
                barrier.wait(timeout=5)
                # ...and only ever sees its own span as current.
                seen[label] = obs.current_span().span_id
                assert obs.current_span() is span
                barrier.wait(timeout=5)

        with tracer.span("main"):
            threads = [
                threading.Thread(target=worker, args=(label,))
                for label in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)

        assert seen["a-before"] is None
        assert seen["b-before"] is None
        spans = _by_name(tracer)
        assert seen["a"] == spans["thread.a"].span_id
        assert seen["b"] == spans["thread.b"].span_id
        # Threads opened their spans with no inherited context: roots.
        assert spans["thread.a"].parent_id is None
        assert spans["thread.b"].parent_id is None


class TestSerializationAndAdoption:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.span("work", triples=3):
            pass
        original = tracer.finished()[0]
        rebuilt = Span.from_dict(original.as_dict())
        assert rebuilt == original

    def test_adopt_reparents_remote_spans_under_local_trace(self):
        coordinator = Tracer()
        with coordinator.span("execute") as execute:
            context = SpanContext(
                trace_id=execute.trace_id, span_id=execute.span_id
            )

        # Simulate the worker side: its own tracer, parented on the context.
        worker = Tracer(trace_id=context.trace_id)
        with worker.span("shard", parent_context=context) as shard:
            with worker.span("shard.inner"):
                pass
        shipped = worker.serialized()

        adopted = coordinator.adopt(shipped)
        assert len(adopted) == 2
        spans = _by_name(coordinator)
        assert spans["shard"].parent_id == execute.span_id
        assert spans["shard.inner"].parent_id == shard.span_id
        assert all(
            span.trace_id == coordinator.trace_id
            for span in coordinator.finished()
        )


class TestModuleApi:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        first = obs.span("anything")
        second = obs.span("else")
        assert first is second  # the singleton no-op context manager
        with first as span:
            span.set("ignored", 1)
            span.incr("ignored")
            assert span.duration_s == 0.0

    def test_configure_enables_and_disable_reverts(self):
        tracer = obs.configure()
        try:
            assert obs.enabled()
            assert obs.get_tracer() is tracer
            with obs.span("work", k=1):
                pass
            assert len(tracer) == 1
        finally:
            obs.disable()
        assert obs.get_tracer() is None

    def test_set_tracer_returns_previous(self):
        first = obs.configure()
        second = Tracer()
        assert obs.set_tracer(second) is first
        assert obs.set_tracer(None) is second

    def test_current_context_inside_and_outside_spans(self):
        assert obs.current_context() is None
        tracer = obs.configure()
        with obs.span("work") as span:
            context = obs.current_context()
            assert context == SpanContext(
                trace_id=tracer.trace_id, span_id=span.span_id
            )

    def test_timed_span_measures_when_disabled(self):
        with obs.timed_span("phase") as span:
            pass
        assert span.end_ns is not None
        assert span.duration_ns > 0
        assert obs.get_tracer() is None  # still unrecorded

    def test_timed_span_records_when_enabled(self):
        tracer = obs.configure()
        with obs.timed_span("phase") as span:
            pass
        assert tracer.finished() == [span]
