"""Tests for the accuracy metrics (tr(mu) and completeness)."""

from repro.eval import accuracy, normalize_cypher_rows, normalize_sparql_rows, tr_term
from repro.namespaces import XSD
from repro.rdf import BlankNode, IRI, Literal


class TestTrTerm:
    def test_iri_to_string(self):
        assert tr_term(IRI("http://x/a")) == "http://x/a"

    def test_literal_to_lexical(self):
        assert tr_term(Literal("1999", XSD.gYear)) == "1999"

    def test_blank_node_to_id(self):
        assert tr_term(BlankNode("b1")) == "_:b1"


class TestNormalization:
    def test_sparql_rows_column_order_free(self):
        rows = [{"b": Literal("2"), "a": Literal("1")}]
        assert list(normalize_sparql_rows(rows)) == [("1", "2")]

    def test_cypher_rows_value_translation(self):
        rows = [{"v": 1999, "u": True}]
        assert list(normalize_cypher_rows(rows)) == [("true", "1999")]

    def test_cypher_null_becomes_empty(self):
        rows = [{"v": None}]
        assert list(normalize_cypher_rows(rows)) == [("",)]

    def test_multiset_semantics(self):
        rows = [{"v": Literal("x")}, {"v": Literal("x")}]
        counter = normalize_sparql_rows(rows)
        assert counter[("x",)] == 2


class TestAccuracy:
    def test_perfect_match(self):
        gt = [{"v": Literal("a")}, {"v": Literal("b")}]
        method = [{"v": "a"}, {"v": "b"}]
        result = accuracy(gt, method)
        assert result.accuracy_percent == 100.0
        assert result.spurious == 0

    def test_partial_match(self):
        gt = [{"v": Literal("a")}, {"v": Literal("b")}, {"v": Literal("c")}]
        method = [{"v": "a"}]
        assert abs(accuracy(gt, method).accuracy_percent - 33.33) < 0.1

    def test_duplicates_matched_at_most_gt_multiplicity(self):
        gt = [{"v": Literal("a")}]
        method = [{"v": "a"}, {"v": "a"}]
        result = accuracy(gt, method)
        assert result.matched == 1
        assert result.spurious == 1

    def test_typed_values_compare_by_lexical(self):
        gt = [{"v": Literal("1999", XSD.gYear)}]
        method = [{"v": 1999}]
        assert accuracy(gt, method).accuracy_percent == 100.0

    def test_empty_ground_truth_is_100(self):
        assert accuracy([], []).accuracy_percent == 100.0

    def test_spurious_rows_do_not_raise_accuracy(self):
        gt = [{"v": Literal("a")}]
        method = [{"v": "b"}, {"v": "c"}]
        result = accuracy(gt, method)
        assert result.accuracy_percent == 0.0
        assert result.returned == 2
