"""Tests for table rendering and timing helpers."""

import time

from repro.eval import (
    MemoryUsage,
    PhaseTimings,
    render_series,
    render_table,
    time_callable,
    timed,
    traced_memory,
)


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table([{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        assert render_table([{"a": 1}], title="T").startswith("T\n")

    def test_explicit_column_order(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_empty_rows(self):
        assert "(no rows)" in render_table([])

    def test_number_formatting(self):
        text = render_table([{"n": 1234567, "f": 0.5, "big": 1234.5}])
        assert "1,234,567" in text and "0.50" in text and "1,234" in text

    def test_missing_cell_blank(self):
        text = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text


class TestRenderSeries:
    def test_series_layout(self):
        text = render_series(
            "Runtime", {"S3PG": {"Q1": 1.0, "Q2": 2.0}, "rdf2pg": {"Q1": 3.0}},
            unit="ms",
        )
        lines = text.splitlines()
        assert "Q1" in lines[1] and "Q2" in lines[1]
        assert any(line.startswith("S3PG") for line in lines)


class TestTiming:
    def test_phase_timings_accumulate(self):
        timings = PhaseTimings()
        timings.record("a", 1.0)
        timings.record("a", 0.5)
        timings.record("b", 2.0)
        assert timings.phases["a"] == 1.5
        assert timings.total() == 3.5
        assert timings.as_row()["total"] == 3.5

    def test_timed_context_manager(self):
        timings = PhaseTimings()
        with timed(timings, "sleep"):
            time.sleep(0.01)
        assert timings.phases["sleep"] >= 0.01

    def test_timed_records_even_on_exception(self):
        timings = PhaseTimings()
        try:
            with timed(timings, "boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in timings.phases

    def test_timed_spans_land_in_an_active_trace(self):
        from repro import obs

        tracer = obs.configure()
        try:
            timings = PhaseTimings()
            with timed(timings, "load"):
                pass
            spans = [s.name for s in tracer.finished()]
            assert spans == ["eval.load"]
            assert timings.phases["load"] >= 0.0
        finally:
            obs.disable()

    def test_time_callable(self):
        elapsed, result = time_callable(lambda: 7, repeat=3)
        assert result == 7 and elapsed >= 0

    def test_traced_memory(self):
        with traced_memory() as holder:
            _ = ["x"] * 100_000
        usage = holder[0]
        assert isinstance(usage, MemoryUsage)
        assert usage.peak_bytes > 0
        assert usage.peak_mb > 0
