"""Test package."""
