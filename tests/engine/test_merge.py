"""Tests for the shard merge and the registry-extension replay."""

import pickle

import pytest

from repro.core import DEFAULT_OPTIONS, S3PG, transform_schema
from repro.engine import ShardOutcome, ShardTask, merge_outcomes, partition_graph
from repro.engine.worker import run_shard_inprocess
from repro.errors import EngineError
from repro.pg import PropertyGraph


def _shard_outcomes(graph, shapes, n_shards):
    """Partition + transform every shard in-process (no pool)."""
    schema_result = transform_schema(shapes)
    partition = partition_graph(graph, n_shards)
    shared = {
        "schema_result": schema_result,
        "options": DEFAULT_OPTIONS,
        "entity_types": partition.entity_types,
        "type_keys": partition.type_keys,
        "shard_triples": partition.shard_triples,
    }
    outcomes = [
        run_shard_inprocess(ShardTask(i), shared)
        for i in range(partition.n_shards)
    ]
    return outcomes, schema_result


class TestMergeOutcomes:
    def test_union_equals_serial(self, uni_graph, uni_shapes, uni_result):
        outcomes, schema_result = _shard_outcomes(uni_graph, uni_shapes, 4)
        transformed, stats = merge_outcomes(
            outcomes, schema_result, DEFAULT_OPTIONS, strict=True
        )
        assert stats.conflicts == 0
        assert transformed.graph.structurally_equal(uni_result.graph)

    def test_counters_recomputed_from_union(self, uni_graph, uni_shapes,
                                            uni_result):
        outcomes, schema_result = _shard_outcomes(uni_graph, uni_shapes, 4)
        transformed, _ = merge_outcomes(
            outcomes, schema_result, DEFAULT_OPTIONS
        )
        assert transformed.stats.triples_processed == len(uni_graph)
        assert transformed.stats.edges == transformed.graph.edge_count()
        serial = uni_result.stats
        assert transformed.stats.entity_nodes == serial.entity_nodes
        assert transformed.stats.literal_nodes == serial.literal_nodes

    def test_order_independent(self, uni_graph, uni_shapes):
        outcomes, schema_result = _shard_outcomes(uni_graph, uni_shapes, 4)
        forward, _ = merge_outcomes(
            outcomes, pickle.loads(pickle.dumps(schema_result)), DEFAULT_OPTIONS
        )
        backward, _ = merge_outcomes(
            list(reversed(outcomes)), schema_result, DEFAULT_OPTIONS
        )
        assert forward.graph.structurally_equal(backward.graph)

    def test_extensions_absorbed_into_parent(self, small_dbpedia):
        outcomes, schema_result = _shard_outcomes(
            small_dbpedia.graph, small_dbpedia.shapes, 4
        )
        merge_outcomes(outcomes, schema_result, DEFAULT_OPTIONS)
        serial = S3PG().transform(small_dbpedia.graph, small_dbpedia.shapes)
        assert (set(schema_result.mapping.fallback)
                == set(serial.mapping.fallback))
        assert (set(schema_result.mapping.literal_types)
                == set(serial.mapping.literal_types))
        assert (set(schema_result.mapping.classes)
                == set(serial.mapping.classes))

    def test_mismatched_extension_raises(self, uni_graph, uni_shapes):
        outcomes, schema_result = _shard_outcomes(uni_graph, uni_shapes, 2)
        bogus = ShardOutcome(
            shard_id=99,
            graph=PropertyGraph(),
            stats=outcomes[0].stats,
            wall_s=0.0,
            cpu_s=0.0,
            new_fallbacks=(("http://ex/pred", "NOT_WHAT_PARENT_MINTS"),),
        )
        with pytest.raises(EngineError):
            merge_outcomes(
                outcomes + [bogus], schema_result, DEFAULT_OPTIONS
            )
