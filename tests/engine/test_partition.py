"""Tests for the subject-hash partitioner."""

import pytest

from repro.core.data_transform import node_id_for
from repro.engine import partition_file, partition_graph, shard_of
from repro.rdf import parse_ntriples, write_ntriples
from repro.rdf.ntriples import iter_ntriples


class TestShardOf:
    def test_deterministic(self):
        assert shard_of("http://ex/a", 8) == shard_of("http://ex/a", 8)

    def test_in_range(self):
        for key in ("http://ex/a", "_:b0", "x" * 500):
            for n in (1, 2, 7, 64):
                assert 0 <= shard_of(key, n) < n

    def test_single_shard(self):
        assert shard_of("anything", 1) == 0

    def test_spreads_keys(self):
        shards = {shard_of(f"http://ex/e{i}", 8) for i in range(200)}
        assert len(shards) > 1


class TestPartitionGraph:
    def test_shards_partition_the_input(self, uni_graph):
        partition = partition_graph(uni_graph, 4)
        assert partition.n_shards == 4
        assert partition.triples_total == len(uni_graph)
        assert sum(partition.shard_sizes) == len(uni_graph)
        merged = {t for shard in partition.shard_triples for t in shard}
        assert merged == set(uni_graph)

    def test_subject_locality(self, uni_graph):
        partition = partition_graph(uni_graph, 4)
        for index, shard in enumerate(partition.shard_triples):
            for triple in shard:
                assert shard_of(node_id_for(triple.s), 4) == index

    def test_entity_types_are_global(self, uni_graph):
        partition = partition_graph(uni_graph, 4)
        from repro.namespaces import RDF_TYPE
        from repro.rdf.terms import IRI

        expected = {}
        for t in uni_graph:
            if t.p == IRI(RDF_TYPE) and isinstance(t.o, IRI):
                expected.setdefault(t.s, []).append(t.o)
        assert set(partition.entity_types) == set(expected)
        for entity, types in expected.items():
            assert set(partition.entity_types[entity]) == set(types)

    def test_one_shard_degenerate(self, uni_graph):
        partition = partition_graph(uni_graph, 1)
        assert partition.shard_sizes == [len(uni_graph)]


class TestPartitionFile:
    def test_matches_graph_partition(self, tmp_path, uni_graph):
        path = tmp_path / "uni.nt"
        write_ntriples(uni_graph, path)
        by_file = partition_file(path, 4, tmp_path / "shards")
        by_graph = partition_graph(uni_graph, 4)
        assert by_file.triples_total == by_graph.triples_total
        assert by_file.shard_sizes == by_graph.shard_sizes
        for index, shard_path in enumerate(by_file.shard_paths):
            file_triples = set(iter_ntriples(shard_path))
            assert file_triples == set(by_graph.shard_triples[index])
        assert by_file.entity_types == by_graph.entity_types

    def test_escaped_subject_routes_with_plain_spelling(self, tmp_path):
        # a is 'a': both lines carry the same logical subject and
        # must land in the same shard even though the raw tokens differ.
        text = (
            '<http://ex/a> <http://ex/p> "one" .\n'
            '<http://ex/\\u0061> <http://ex/q> "two" .\n'
        )
        path = tmp_path / "escaped.nt"
        path.write_text(text, encoding="utf-8")
        partition = partition_file(path, 8, tmp_path / "shards")
        non_empty = [size for size in partition.shard_sizes if size]
        assert non_empty == [2]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "noise.nt"
        path.write_text(
            "# comment\n\n<http://ex/s> <http://ex/p> <http://ex/o> .\n",
            encoding="utf-8",
        )
        partition = partition_file(path, 2, tmp_path / "shards")
        assert partition.triples_total == 1

    def test_type_statements_collected_from_file(self, tmp_path, uni_graph):
        path = tmp_path / "uni.nt"
        write_ntriples(uni_graph, path)
        partition = partition_file(path, 3, tmp_path / "shards")
        assert partition.entity_types
        assert partition.type_iris
        text = path.read_text(encoding="utf-8")
        graph = parse_ntriples(text)
        assert partition.triples_total == len(graph)
