"""Tests for the parallel engine orchestration.

Includes the headline integration test of the subsystem: transforming
with ``workers=1`` and ``workers=4`` produces property graphs isomorphic
to each other (and to the serial transformer) on both the university
running example and the evolving-snapshot datasets.
"""

import pytest

from repro.core import (
    DEFAULT_OPTIONS,
    MONOTONE_OPTIONS,
    S3PG,
    TransformOptions,
    transform_schema,
)
from repro.core.pipeline import transform_file_parallel
from repro.datasets import make_evolution_pair
from repro.engine import EngineConfig, ParallelEngine
from repro.errors import EngineError, TransformError
from repro.rdf import write_ntriples


def _engine(shapes, options=DEFAULT_OPTIONS, **config):
    return ParallelEngine(
        transform_schema(shapes, options), options, EngineConfig(**config)
    )


class TestParallelMatchesSerial:
    """Acceptance: workers=1 ≅ workers=4 ≅ serial on both datasets."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_university(self, uni_graph, uni_shapes, uni_result, workers):
        result = S3PG().transform(uni_graph, uni_shapes, parallel=workers)
        assert result.graph.structurally_equal(uni_result.graph)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_evolution_snapshots(self, small_dbpedia, workers):
        pair = make_evolution_pair(small_dbpedia.graph)
        for snapshot in (pair.old, pair.new):
            serial = S3PG().transform(snapshot, small_dbpedia.shapes)
            parallel = S3PG().transform(
                snapshot, small_dbpedia.shapes, parallel=workers
            )
            assert parallel.graph.structurally_equal(serial.graph)

    def test_non_parsimonious(self, uni_graph, uni_shapes):
        serial = S3PG(MONOTONE_OPTIONS).transform(uni_graph, uni_shapes)
        parallel = S3PG(MONOTONE_OPTIONS).transform(
            uni_graph, uni_shapes, parallel=4
        )
        assert parallel.graph.structurally_equal(serial.graph)

    def test_debug_mode_asserts_pure_union(self, small_dbpedia):
        engine = _engine(small_dbpedia.shapes, max_workers=4, debug=True)
        transformed = engine.transform(small_dbpedia.graph)
        serial = S3PG().transform(small_dbpedia.graph, small_dbpedia.shapes)
        assert transformed.graph.structurally_equal(serial.graph)
        assert engine.instrumentation.counters["merge_conflicts"] == 0


class TestFilePath:
    def test_transform_file_matches_serial(self, tmp_path, small_dbpedia):
        path = tmp_path / "dbp.nt"
        write_ntriples(small_dbpedia.graph, path)
        result = transform_file_parallel(
            path, small_dbpedia.shapes, workers=2
        )
        serial = S3PG().transform(small_dbpedia.graph, small_dbpedia.shapes)
        assert result.graph.structurally_equal(serial.graph)
        assert result.instrumentation is not None
        assert "engine_partition_s" in result.timings

    def test_shard_dir_kept_when_given(self, tmp_path, uni_graph, uni_shapes):
        path = tmp_path / "uni.nt"
        write_ntriples(uni_graph, path)
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        engine = _engine(uni_shapes, max_workers=2)
        engine.transform_file(path, shard_dir=shard_dir)
        assert list(shard_dir.glob("*.nt"))


class TestEngineBehavior:
    def test_instrumentation_populated(self, uni_graph, uni_shapes):
        engine = _engine(uni_shapes, max_workers=2)
        engine.transform(uni_graph)
        inst = engine.instrumentation
        assert {"partition", "schema", "execute", "merge"} <= set(inst.phases)
        assert inst.counters["triples"] == len(uni_graph)
        assert inst.counters["shards"] == 2
        assert len(inst.shards) == 2

    def test_more_shards_than_workers(self, uni_graph, uni_shapes, uni_result):
        engine = _engine(uni_shapes, max_workers=2, shards=8)
        transformed = engine.transform(uni_graph)
        assert engine.instrumentation.counters["shards"] == 8
        assert transformed.graph.structurally_equal(uni_result.graph)

    def test_effective_workers_defaults_positive(self):
        assert EngineConfig().effective_workers() >= 1
        assert EngineConfig(max_workers=3).effective_workers() == 3

    def test_on_unknown_error_propagates(self, small_dbpedia):
        options = TransformOptions(on_unknown="error")
        from repro.shacl.model import ShapeSchema

        engine = _engine(ShapeSchema([]), options=options, max_workers=2)
        with pytest.raises(TransformError):
            engine.transform(small_dbpedia.graph)

    def test_on_unknown_skip(self, small_dbpedia):
        options = TransformOptions(on_unknown="skip")
        serial = S3PG(options).transform(
            small_dbpedia.graph, small_dbpedia.shapes
        )
        parallel = S3PG(options).transform(
            small_dbpedia.graph, small_dbpedia.shapes, parallel=2
        )
        assert parallel.graph.structurally_equal(serial.graph)

    def test_engine_error_degrades_to_serial(self, monkeypatch, uni_graph,
                                             uni_shapes, uni_result):
        import repro.engine.executor as executor_module

        def explode(*args, **kwargs):
            raise EngineError("injected")

        monkeypatch.setattr(executor_module, "merge_outcomes", explode)
        engine = _engine(uni_shapes, max_workers=2)
        transformed = engine.transform(uni_graph)
        assert transformed.graph.structurally_equal(uni_result.graph)
        inst = engine.instrumentation
        assert inst.counters["full_serial_fallbacks"] == 1
        assert "serial_fallback" in inst.phases

    def test_spawn_start_method(self, uni_graph, uni_shapes, uni_result):
        # The initializer path (no fork inheritance) must agree too.
        engine = _engine(uni_shapes, max_workers=2, start_method="spawn")
        transformed = engine.transform(uni_graph)
        assert transformed.graph.structurally_equal(uni_result.graph)
