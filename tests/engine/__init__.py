"""Test package."""
