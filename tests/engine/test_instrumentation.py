"""Tests for the engine instrumentation layer."""

import json

from repro.engine import EngineInstrumentation, ShardRecord


def _record(shard_id, triples):
    return ShardRecord(shard_id=shard_id, triples=triples, wall_s=0.1, cpu_s=0.05)


class TestPhases:
    def test_phase_times_accumulate(self):
        inst = EngineInstrumentation()
        with inst.phase("work"):
            pass
        first = inst.phases["work"].wall_s
        with inst.phase("work"):
            sum(range(1000))
        assert inst.phases["work"].wall_s >= first

    def test_phase_recorded_on_exception(self):
        inst = EngineInstrumentation()
        try:
            with inst.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in inst.phases


class TestCounters:
    def test_count_accumulates(self):
        inst = EngineInstrumentation()
        inst.count("x")
        inst.count("x", 4)
        assert inst.counters["x"] == 5


class TestSkew:
    def test_empty(self):
        inst = EngineInstrumentation()
        assert inst.skew()["max_over_mean"] == 0.0
        assert inst.skew_histogram() == []

    def test_balanced(self):
        inst = EngineInstrumentation()
        for i in range(4):
            inst.record_shard(_record(i, 100))
        skew = inst.skew()
        assert skew["min"] == skew["max"] == 100
        assert skew["max_over_mean"] == 1.0
        assert inst.skew_histogram() == [("100", 4)]

    def test_skewed(self):
        inst = EngineInstrumentation()
        for i, size in enumerate([10, 10, 10, 400]):
            inst.record_shard(_record(i, size))
        skew = inst.skew()
        assert skew["max"] == 400
        assert skew["max_over_mean"] > 3.0
        histogram = inst.skew_histogram(bins=4)
        assert sum(count for _, count in histogram) == 4
        # The long tail shows up as a populated top bucket.
        assert histogram[-1][1] == 1


class TestRendering:
    def _populated(self):
        inst = EngineInstrumentation()
        with inst.phase("partition"):
            pass
        inst.count("triples", 42)
        inst.record_shard(_record(0, 21))
        inst.record_shard(_record(1, 21))
        return inst

    def test_as_dict_shape(self):
        snapshot = self._populated().as_dict()
        assert set(snapshot) == {"phases", "counters", "shards", "skew"}
        assert snapshot["counters"]["triples"] == 42
        assert len(snapshot["shards"]) == 2
        assert snapshot["shards"][0]["shard_id"] == 0

    def test_to_json_round_trips(self):
        snapshot = json.loads(self._populated().to_json())
        assert snapshot["counters"]["triples"] == 42

    def test_render_text(self):
        text = self._populated().render_text()
        assert "partition" in text
        assert "triples" in text
        assert "shard sizes" in text

    def test_histogram_bars_cap_and_scale(self):
        # Hundreds of shards in one bucket must not draw hundreds of '#'.
        inst = EngineInstrumentation()
        for i in range(500):
            inst.record_shard(_record(i, 100))
        inst.record_shard(_record(500, 1000))
        bar_lines = [
            line for line in inst.render_text().splitlines()
            if line.lstrip().startswith("[")
        ]
        bars = [line.split("]", 1)[1].split("(")[0].strip() for line in bar_lines]
        widths = [len(bar) for bar in bars]
        assert max(widths) == 40  # the peak bucket fills the full bar
        # Populated buckets always show at least one character...
        populated = [
            width for line, width in zip(bar_lines, widths)
            if not line.rstrip().endswith("(0)")
        ]
        assert min(populated) >= 1
        # ...and scale with their counts (500-shard bucket >> 1-shard bucket).
        assert sorted(widths)[-1] > sorted(populated)[0]
