"""Test package."""
