"""Tests for the NeoSemantics baseline: mapping behaviour and loss modes."""

import pytest

from repro.baselines import NeoSemanticsTransformer, neosemantics_transform
from repro.baselines.neosemantics import cypher_for_class_property
from repro.namespaces import XSD
from repro.rdf import parse_turtle

PREFIX = "@prefix : <http://x/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"


def run(body: str, **kwargs):
    return neosemantics_transform(parse_turtle(PREFIX + body), **kwargs)


class TestMapping:
    def test_types_become_labels(self):
        result = run(":a a :Person .")
        node = result.graph.get_node("http://x/a")
        assert "Person" in node.labels

    def test_uri_property_key(self):
        result = run(":a a :Person .")
        assert result.graph.get_node("http://x/a").properties["uri"] == "http://x/a"

    def test_iri_objects_become_relationships(self):
        result = run(":a :knows :b .")
        edges = list(result.graph.edges.values())
        assert len(edges) == 1 and "knows" in edges[0].labels

    def test_unseen_target_gets_resource_label(self):
        result = run(":a :knows :b .")
        assert "Resource" in result.graph.get_node("http://x/b").labels

    def test_literals_become_properties(self):
        result = run(':a :name "A" .')
        assert result.graph.get_node("http://x/a").properties["name"] == "A"

    def test_multivalued_array_accumulates(self):
        result = run(':a :tag "x", "y" .')
        assert sorted(result.graph.get_node("http://x/a").properties["tag"]) == ["x", "y"]

    def test_blank_nodes_kept(self):
        result = run('_:b :name "B" .')
        assert result.graph.has_node("_:b")


class TestLossModes:
    def test_datatype_erasure_collides(self):
        """"1999"^^gYear and "1999" are distinct in RDF but merge in n10s."""
        result = run(':a :year "1999"^^xsd:gYear, "1999" .')
        assert result.graph.get_node("http://x/a").properties["year"] == "1999"
        assert result.stats.values_merged == 1

    def test_language_tags_stripped_and_merged(self):
        result = run(':a :label "foo"@en, "foo"@de .')
        assert result.graph.get_node("http://x/a").properties["label"] == "foo"
        assert result.stats.values_merged == 1

    def test_distinct_values_not_merged(self):
        result = run(':a :year "1999"^^xsd:gYear, "2000" .')
        assert sorted(result.graph.get_node("http://x/a").properties["year"]) == [
            "1999", "2000",
        ]

    def test_numeric_types_kept_native(self):
        result = run(":a :n 42 .")
        assert result.graph.get_node("http://x/a").properties["n"] == 42

    def test_overwrite_strategy_keeps_last_value(self):
        result = run(':a :tag "x" . :a :tag "y" .', handle_multival="OVERWRITE")
        tag = result.graph.get_node("http://x/a").properties["tag"]
        assert isinstance(tag, str)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            NeoSemanticsTransformer(handle_multival="NOPE")


class TestTransactions:
    def test_commits_counted(self):
        result = run(':a :name "A" .')
        assert result.stats.commits == 1
        assert result.stats.wal_bytes > 0

    def test_commit_size_respected(self):
        body = "\n".join(f':e{i} :name "v{i}" .' for i in range(10))
        transformer = NeoSemanticsTransformer(commit_size=3)
        result = transformer.transform(parse_turtle(PREFIX + body))
        assert result.stats.commits == 4  # 3+3+3+1

    def test_combined_time_recorded(self):
        assert run(':a :name "A" .').combined_seconds > 0


class TestQueryGeneration:
    def test_union_all_shape(self):
        result = run(":a a :Person .")
        cypher = cypher_for_class_property(
            result.resolver, "http://x/Person", "http://x/addr"
        )
        assert "UNION ALL" in cypher
        assert "UNWIND" in cypher
        assert "node.uri" in cypher

    def test_generated_cypher_parses(self):
        from repro.query.cypher import parse_cypher

        result = run(":a a :Person .")
        cypher = cypher_for_class_property(
            result.resolver, "http://x/Person", "http://x/addr"
        )
        assert len(parse_cypher(cypher).parts) == 2
