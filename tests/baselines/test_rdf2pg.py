"""Tests for the rdf2pg baseline: realizations and loss modes."""

from repro.baselines import ATTRIBUTE, EDGE, Rdf2pgTransformer, rdf2pg_transform
from repro.baselines.rdf2pg import cypher_for_class_property
from repro.namespaces import XSD
from repro.rdf import parse_turtle
from repro.shacl import parse_shacl

SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:Album a sh:NodeShape ; sh:targetClass :Album ;
  sh:property [ sh:path :title ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :released ;
    sh:or ( [ sh:datatype xsd:date ] [ sh:datatype xsd:string ] ) ;
    sh:minCount 0 ] ;
  sh:property [ sh:path :writer ;
    sh:or ( [ sh:nodeKind sh:IRI ; sh:class :Person ]
            [ sh:datatype xsd:string ] ) ; sh:minCount 0 ] .
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] .
""")

PREFIX = "@prefix : <http://x/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"


def run(body: str):
    return rdf2pg_transform(parse_turtle(PREFIX + body), SHAPES)


class TestRealizations:
    def test_literal_only_property_is_attribute(self):
        transformer = Rdf2pgTransformer(SHAPES)
        realization = transformer.realization_for("http://x/title")
        assert realization.kind == ATTRIBUTE
        assert realization.primary_datatype == XSD.string

    def test_multi_literal_primary_is_first_declared(self):
        transformer = Rdf2pgTransformer(SHAPES)
        realization = transformer.realization_for("http://x/released")
        assert realization.kind == ATTRIBUTE
        assert realization.primary_datatype == XSD.date

    def test_heterogeneous_property_is_edge(self):
        transformer = Rdf2pgTransformer(SHAPES)
        assert transformer.realization_for("http://x/writer").kind == EDGE

    def test_unknown_predicate_defaults_to_edge(self):
        transformer = Rdf2pgTransformer(SHAPES)
        assert transformer.realization_for("http://x/unknown").kind == EDGE


class TestLossModes:
    def test_literal_value_of_edge_property_dropped(self):
        result = run(':a a :Album ; :title "T" ; :writer "Tofer Brown" .')
        assert result.stats.dropped_literals == 1
        assert result.graph.edge_count() == 0

    def test_iri_value_of_edge_property_kept(self):
        result = run(":a a :Album ; :writer :w . :w a :Person .")
        assert result.graph.edge_count() == 1

    def test_wrong_datatype_attribute_value_dropped(self):
        result = run(':a a :Album ; :released "1999" .')  # string, primary is date
        assert result.stats.dropped_wrong_datatype == 1
        assert "released" not in result.graph.get_node("http://x/a").properties

    def test_primary_datatype_attribute_value_kept(self):
        result = run(':a a :Album ; :released "1999-01-01"^^xsd:date .')
        assert result.graph.get_node("http://x/a").properties["released"] == "1999-01-01"

    def test_language_tagged_values_dropped(self):
        result = run(':a a :Album ; :title "T"@en .')
        assert result.stats.dropped_lang_tagged == 1

    def test_blank_nodes_dropped(self):
        result = run('_:b a :Album ; :title "T" .')
        assert result.stats.dropped_bnodes == 2
        assert result.graph.node_count() == 0


class TestPipeline:
    def test_phases_timed_separately(self):
        result = run(':a a :Album ; :title "T" .')
        assert result.transform_seconds > 0
        assert result.load_seconds > 0

    def test_yarspg_intermediate_produced(self):
        result = run(':a a :Album ; :title "T" .')
        assert result.yarspg_size > 0

    def test_loaded_store_is_queryable(self):
        result = run(':a a :Album ; :title "T" .')
        assert result.store.count_label("Album") == 1

    def test_iri_property_key(self):
        result = run(':a a :Album ; :title "T" .')
        assert result.graph.get_node("http://x/a").properties["iri"] == "http://x/a"


class TestQueryGeneration:
    def test_attribute_query_uses_unwind(self):
        result = run(':a a :Album ; :title "T" .')
        cypher = cypher_for_class_property(result, "http://x/Album", "http://x/title")
        assert "UNWIND" in cypher and "UNION" not in cypher

    def test_edge_query_uses_relationship(self):
        result = run(':a a :Album ; :title "T" .')
        cypher = cypher_for_class_property(result, "http://x/Album", "http://x/writer")
        assert "-[:writer]->" in cypher

    def test_generated_cypher_parses(self):
        from repro.query.cypher import parse_cypher

        result = run(':a a :Album ; :title "T" .')
        for predicate in ("http://x/title", "http://x/writer"):
            cypher = cypher_for_class_property(result, "http://x/Album", predicate)
            assert parse_cypher(cypher).parts
