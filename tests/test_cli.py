"""End-to-end tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import load_rdf, main
from repro.datasets import (
    UNIVERSITY_DATA_TTL,
    UNIVERSITY_SHAPES_TTL,
    university_graph,
)
from repro.rdf import serialize_ntriples


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.ttl"
    path.write_text(UNIVERSITY_DATA_TTL, encoding="utf-8")
    return path


@pytest.fixture
def nt_file(tmp_path):
    path = tmp_path / "data.nt"
    path.write_text(serialize_ntriples(university_graph()), encoding="utf-8")
    return path


@pytest.fixture
def shapes_file(tmp_path):
    path = tmp_path / "shapes.ttl"
    path.write_text(UNIVERSITY_SHAPES_TTL, encoding="utf-8")
    return path


class TestLoadRdf:
    def test_turtle_by_default(self, data_file):
        assert len(load_rdf(data_file)) == len(university_graph())

    def test_ntriples_by_extension(self, nt_file):
        assert len(load_rdf(nt_file)) == len(university_graph())


class TestTransform:
    def test_with_shapes(self, data_file, shapes_file, tmp_path, capsys):
        out = tmp_path / "out"
        code = main([
            "transform", str(data_file), "--shapes", str(shapes_file),
            "-o", str(out),
        ])
        assert code == 0
        assert (out / "nodes.csv").exists()
        assert (out / "edges.csv").exists()
        assert (out / "schema.pgs").exists()
        mapping = json.loads((out / "mapping.json").read_text())
        assert mapping["parsimonious"] is True

    def test_without_shapes_extracts(self, data_file, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(["transform", str(data_file), "-o", str(out)]) == 0
        assert "extracted" in capsys.readouterr().out

    def test_non_parsimonious_flag(self, data_file, shapes_file, tmp_path):
        out = tmp_path / "out"
        code = main([
            "transform", str(data_file), "--shapes", str(shapes_file),
            "-o", str(out), "--non-parsimonious",
        ])
        assert code == 0
        mapping = json.loads((out / "mapping.json").read_text())
        assert mapping["parsimonious"] is False

    def test_g2gml_output(self, data_file, shapes_file, tmp_path):
        out = tmp_path / "out"
        code = main([
            "transform", str(data_file), "--shapes", str(shapes_file),
            "-o", str(out), "--g2gml",
        ])
        assert code == 0
        assert "PREFIX rdf:" in (out / "mapping.g2g").read_text()

    def test_conformance_of_transform_output(self, data_file, shapes_file,
                                              tmp_path, capsys):
        out = tmp_path / "out"
        main(["transform", str(data_file), "--shapes", str(shapes_file),
              "-o", str(out)])
        code = main(["conformance", str(out), str(out / "schema.pgs")])
        assert code == 0
        assert "conforms" in capsys.readouterr().out


class TestExtractShapes:
    def test_to_stdout(self, data_file, capsys):
        assert main(["extract-shapes", str(data_file)]) == 0
        assert "sh:NodeShape" in capsys.readouterr().out

    def test_to_file(self, data_file, tmp_path):
        out = tmp_path / "shapes.ttl"
        assert main(["extract-shapes", str(data_file), "-o", str(out)]) == 0
        assert "sh:NodeShape" in out.read_text()


class TestValidate:
    def test_conforming(self, data_file, shapes_file, capsys):
        assert main(["validate", str(data_file), str(shapes_file)]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_violating_returns_nonzero(self, tmp_path, shapes_file, capsys):
        bad = tmp_path / "bad.ttl"
        bad.write_text(
            "@prefix : <http://example.org/university#> .\n:x a :Person .\n",
            encoding="utf-8",
        )
        assert main(["validate", str(bad), str(shapes_file)]) == 1
        assert "violation" in capsys.readouterr().out


class TestStats:
    def test_stats(self, data_file, capsys):
        assert main(["stats", str(data_file)]) == 0
        assert "# of triples" in capsys.readouterr().out

    def test_shape_stats(self, shapes_file, capsys):
        assert main(["shape-stats", str(shapes_file)]) == 0
        assert "# of NS" in capsys.readouterr().out


class TestQuery:
    SPARQL = (
        "PREFIX uni: <http://example.org/university#> "
        "SELECT ?s WHERE { ?s a uni:Person . }"
    )

    def test_sparql_on_rdf(self, data_file, capsys):
        assert main(["query", str(data_file), self.SPARQL]) == 0
        assert "2 row(s)" in capsys.readouterr().out

    def test_via_pg_translation(self, data_file, capsys):
        assert main(["query", str(data_file), self.SPARQL, "--via-pg"]) == 0
        out = capsys.readouterr().out
        assert "translated Cypher" in out
        assert "2 row(s)" in out

    def test_query_from_file(self, data_file, tmp_path, capsys):
        qfile = tmp_path / "q.rq"
        qfile.write_text(self.SPARQL, encoding="utf-8")
        assert main(["query", str(data_file), f"@{qfile}"]) == 0


class TestGenerate:
    def test_generate_dataset(self, tmp_path, capsys):
        out = tmp_path / "kg.nt"
        code = main(["generate", "dbpedia2020", "-o", str(out), "--scale", "0.1"])
        assert code == 0
        assert out.exists()
        assert "triples" in capsys.readouterr().out


class TestErrors:
    def test_missing_file_reports_error(self, capsys):
        assert main(["stats", "/nonexistent/file.ttl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.ttl"
        bad.write_text("this is not turtle", encoding="utf-8")
        assert main(["stats", str(bad)]) == 2


class TestToRdfAndCompact:
    def _transform(self, data_file, shapes_file, tmp_path, extra=()):
        out = tmp_path / "pgout"
        assert main([
            "transform", str(data_file), "--shapes", str(shapes_file),
            "-o", str(out), *extra,
        ]) == 0
        return out

    def test_to_rdf_round_trips(self, data_file, shapes_file, tmp_path, capsys):
        out = self._transform(data_file, shapes_file, tmp_path)
        nt_out = tmp_path / "back.nt"
        assert main([
            "to-rdf", str(out), str(out / "mapping.json"), "-o", str(nt_out),
        ]) == 0
        from repro.rdf import graphs_equal_modulo_bnodes, parse_ntriples

        assert graphs_equal_modulo_bnodes(
            parse_ntriples(nt_out), university_graph()
        )

    def test_compact_produces_conforming_output(self, data_file, shapes_file,
                                                tmp_path, capsys):
        out = self._transform(
            data_file, shapes_file, tmp_path, extra=("--non-parsimonious",)
        )
        compacted = tmp_path / "compacted"
        assert main([
            "compact", str(out), str(out / "mapping.json"),
            "-o", str(compacted),
        ]) == 0
        assert "folded" in capsys.readouterr().out
        assert main([
            "conformance", str(compacted), str(compacted / "schema.pgs"),
        ]) == 0


class TestServe:
    @pytest.fixture
    def delta_log(self, tmp_path):
        from repro.cdc import Delta, write_delta_log
        from repro.rdf.ntriples import parse_line

        graph = university_graph()
        triples = sorted(graph, key=str)
        # Stream the last few triples instead of baking them into the base.
        streamed, base = triples[-4:], triples[:-4]
        base_path = tmp_path / "base.nt"
        base_path.write_text(serialize_ntriples(base), encoding="utf-8")
        log = tmp_path / "deltas.jsonl"
        write_delta_log(
            [Delta(i + 1, added=(t,)) for i, t in enumerate(streamed)], log
        )
        return base_path, log

    def test_serve_once_replays_and_reports(self, delta_log, shapes_file,
                                            tmp_path, capsys):
        base, log = delta_log
        assert main([
            "serve", "--source", str(log), "--data", str(base),
            "--shapes", str(shapes_file), "--once",
        ]) == 0
        out = capsys.readouterr().out
        assert "applied 4 delta(s)" in out
        assert "standing report" in out

    def test_serve_checkpoint_resume(self, delta_log, shapes_file,
                                     tmp_path, capsys):
        base, log = delta_log
        ckpt = tmp_path / "ckpt"
        args = [
            "serve", "--source", str(log), "--data", str(base),
            "--shapes", str(shapes_file), "--once",
            "--checkpoint-dir", str(ckpt),
        ]
        assert main(args) == 0
        capsys.readouterr()
        # Second run resumes from the watermark: nothing left to apply.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "applied 0 delta(s)" in out

    def test_serve_exports_metrics(self, delta_log, shapes_file,
                                   tmp_path, capsys):
        from repro.obs import get_metrics

        get_metrics().reset()  # counters persist across in-process runs
        base, log = delta_log
        metrics = tmp_path / "metrics.json"
        assert main([
            "serve", "--source", str(log), "--data", str(base),
            "--shapes", str(shapes_file), "--once",
            "--metrics", str(metrics),
        ]) == 0
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        applied = [
            s for s in snapshot["repro_cdc_deltas_total"]["series"]
            if s["labels"].get("status") == "applied"
        ]
        assert applied and applied[0]["value"] == 4
        assert snapshot["repro_cdc_delta_latency_seconds"]["series"][0]["count"] == 4
