"""Tests for the file-based streaming transformation."""

import pytest

from repro.core import DEFAULT_OPTIONS, MONOTONE_OPTIONS, S3PG, transform_schema
from repro.core.streaming import StreamingDataTransformer, transform_file
from repro.datasets import university_graph, university_shapes
from repro.rdf import write_ntriples


@pytest.fixture
def nt_path(tmp_path):
    path = tmp_path / "uni.nt"
    write_ntriples(university_graph(), path)
    return path


class TestStreaming:
    def test_matches_in_memory_transform(self, nt_path):
        shapes = university_shapes()
        schema_result = transform_schema(shapes)
        streamed = transform_file(nt_path, schema_result)
        in_memory = S3PG().transform(university_graph(), shapes)
        assert streamed.graph.structurally_equal(in_memory.graph)

    def test_matches_in_memory_non_parsimonious(self, nt_path):
        shapes = university_shapes()
        schema_result = transform_schema(shapes, MONOTONE_OPTIONS)
        streamed = transform_file(nt_path, schema_result, MONOTONE_OPTIONS)
        in_memory = S3PG(MONOTONE_OPTIONS).transform(university_graph(), shapes)
        assert streamed.graph.structurally_equal(in_memory.graph)

    def test_triples_counted_once(self, nt_path):
        schema_result = transform_schema(university_shapes())
        streamed = transform_file(nt_path, schema_result)
        assert streamed.stats.triples_processed == len(university_graph())

    def test_on_synthetic_dataset(self, tmp_path, small_dbpedia):
        path = tmp_path / "dbp.nt"
        write_ntriples(small_dbpedia.graph, path)
        schema_result = transform_schema(small_dbpedia.shapes)
        streamed = StreamingDataTransformer(
            schema_result, DEFAULT_OPTIONS
        ).transform_file(path)
        in_memory = S3PG().transform(small_dbpedia.graph, small_dbpedia.shapes)
        assert streamed.graph.structurally_equal(in_memory.graph)

    def test_missing_file_raises(self):
        schema_result = transform_schema(university_shapes())
        with pytest.raises(FileNotFoundError):
            transform_file("/nonexistent/file.nt", schema_result)
