"""Tests for the file-based streaming transformation."""

import pytest

from repro.core import DEFAULT_OPTIONS, MONOTONE_OPTIONS, S3PG, transform_schema
from repro.core.streaming import StreamingDataTransformer, transform_file
from repro.datasets import university_graph, university_shapes
from repro.rdf import write_ntriples


@pytest.fixture
def nt_path(tmp_path):
    path = tmp_path / "uni.nt"
    write_ntriples(university_graph(), path)
    return path


class TestStreaming:
    def test_matches_in_memory_transform(self, nt_path):
        shapes = university_shapes()
        schema_result = transform_schema(shapes)
        streamed = transform_file(nt_path, schema_result)
        in_memory = S3PG().transform(university_graph(), shapes)
        assert streamed.graph.structurally_equal(in_memory.graph)

    def test_matches_in_memory_non_parsimonious(self, nt_path):
        shapes = university_shapes()
        schema_result = transform_schema(shapes, MONOTONE_OPTIONS)
        streamed = transform_file(nt_path, schema_result, MONOTONE_OPTIONS)
        in_memory = S3PG(MONOTONE_OPTIONS).transform(university_graph(), shapes)
        assert streamed.graph.structurally_equal(in_memory.graph)

    def test_triples_counted_once(self, nt_path):
        schema_result = transform_schema(university_shapes())
        streamed = transform_file(nt_path, schema_result)
        assert streamed.stats.triples_processed == len(university_graph())

    def test_on_synthetic_dataset(self, tmp_path, small_dbpedia):
        path = tmp_path / "dbp.nt"
        write_ntriples(small_dbpedia.graph, path)
        schema_result = transform_schema(small_dbpedia.shapes)
        streamed = StreamingDataTransformer(
            schema_result, DEFAULT_OPTIONS
        ).transform_file(path)
        in_memory = S3PG().transform(small_dbpedia.graph, small_dbpedia.shapes)
        assert streamed.graph.structurally_equal(in_memory.graph)

    def test_missing_file_raises(self):
        schema_result = transform_schema(university_shapes())
        with pytest.raises(FileNotFoundError):
            transform_file("/nonexistent/file.nt", schema_result)


class TestStreamingEdgeCases:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.nt"
        path.write_text("", encoding="utf-8")
        streamed = transform_file(path, transform_schema(university_shapes()))
        assert streamed.stats.triples_processed == 0
        assert streamed.graph.node_count() == 0
        assert streamed.graph.edge_count() == 0

    def test_comment_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "comments.nt"
        path.write_text(
            "# leading comment\n"
            "\n"
            "<http://ex/s> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
            "<http://ex/C> .\n"
            "   \n"
            "# trailing comment\n",
            encoding="utf-8",
        )
        streamed = transform_file(path, transform_schema(university_shapes()))
        assert streamed.stats.triples_processed == 1
        assert streamed.graph.node_count() == 1

    def test_blank_node_subjects(self, tmp_path):
        path = tmp_path / "bnodes.nt"
        path.write_text(
            "_:b0 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
            "<http://ex/C> .\n"
            '_:b0 <http://ex/name> "Anon" .\n'
            "_:b1 <http://ex/knows> _:b0 .\n",
            encoding="utf-8",
        )
        streamed = transform_file(path, transform_schema(university_shapes()))
        assert streamed.stats.triples_processed == 3
        # _:b0 is typed (external class), _:b1 is an untyped Resource, and
        # the off-schema name statement materializes a literal node.
        assert streamed.graph.has_node("_:b0")
        assert streamed.graph.get_node("_:b0").labels == {"C"}
        assert streamed.graph.has_node("_:b1")
        assert streamed.graph.get_node("_:b1").labels == {"Resource"}
        assert streamed.graph.node_count() == 3
        assert streamed.graph.edge_count() == 2

    def test_file_matches_in_memory_phase_by_phase(self, nt_path):
        """The streamed result equals the in-memory DataTransformer's:
        same phase-1 nodes, same phase-2 edges/records, same counters."""
        from repro.core import DataTransformer

        schema_result = transform_schema(university_shapes())
        streamed = transform_file(nt_path, schema_result)
        in_memory = DataTransformer(
            transform_schema(university_shapes()), DEFAULT_OPTIONS
        ).transform(university_graph())
        # Phase 1: identical node ids and label sets.
        assert set(streamed.graph.nodes) == set(in_memory.graph.nodes)
        for node_id, node in streamed.graph.nodes.items():
            assert node.labels == in_memory.graph.nodes[node_id].labels
        # Phase 2: identical edges and records.
        assert set(streamed.graph.edges) == set(in_memory.graph.edges)
        assert streamed.graph.structurally_equal(in_memory.graph)
        assert streamed.stats == in_memory.stats
