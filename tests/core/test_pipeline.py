"""Tests for the end-to-end S3PG pipeline API."""

from repro import DEFAULT_OPTIONS, MONOTONE_OPTIONS, S3PG, transform
from repro.pgschema import check_conformance
from repro.pg import PropertyGraphStore


class TestTransformApi:
    def test_result_exposes_all_artifacts(self, uni_result):
        assert uni_result.graph.node_count() > 0
        assert len(uni_result.pg_schema.node_types) > 0
        assert uni_result.mapping.parsimonious is True
        assert uni_result.stats.triples_processed > 0

    def test_timings_recorded(self, uni_result):
        assert set(uni_result.timings) >= {"schema_s", "data_s", "transform_s"}
        assert uni_result.timings["transform_s"] >= uni_result.timings["data_s"]

    def test_load_builds_indexed_store(self, uni_graph, uni_shapes):
        result = transform(uni_graph, uni_shapes)
        store = result.load()
        assert isinstance(store, PropertyGraphStore)
        assert "load_s" in result.timings
        assert store.node_by_property(
            "iri", "http://example.org/university#bob"
        ) is not None

    def test_schema_only_entry_point(self, uni_shapes):
        schema_result = S3PG().transform_schema(uni_shapes)
        assert "uni_PersonType" in schema_result.pg_schema.node_types

    def test_output_conforms_to_schema(self, uni_result):
        assert check_conformance(uni_result.graph, uni_result.pg_schema).conforms

    def test_non_parsimonious_output_conforms(self, uni_graph, uni_shapes):
        result = transform(uni_graph, uni_shapes, options=MONOTONE_OPTIONS)
        assert check_conformance(result.graph, result.pg_schema).conforms

    def test_figure2_example_shape(self, uni_result):
        """The Figure 2c output: bob carries Person/Student/GS labels and
        takesCourse links to both a course node and a literal node."""
        bob = uni_result.graph.get_node("http://example.org/university#bob")
        assert {"uni_Person", "uni_Student", "uni_GraduateStudent"} <= bob.labels
        takes = [
            e for e in uni_result.graph.edges.values()
            if e.src == bob.id and "uni_takesCourse" in e.labels
        ]
        assert len(takes) == 2
        labels = {
            frozenset(uni_result.graph.nodes[e.dst].labels) for e in takes
        }
        assert frozenset({"STRING"}) in labels  # 'Intro to Logic' literal node

    def test_default_options_are_parsimonious(self):
        assert DEFAULT_OPTIONS.parsimonious and not MONOTONE_OPTIONS.parsimonious
