"""Tests for the F_st schema mapping structure and its persistence."""

import pytest

from repro.core import (
    ClassMapping,
    LiteralTypeInfo,
    MODE_EDGE,
    MODE_KEY_VALUE,
    PropertyMapping,
    SchemaMapping,
    transform_schema,
)
from repro.errors import TransformError
from repro.namespaces import XSD
from repro.shacl import UNBOUNDED


def build_mapping() -> SchemaMapping:
    mapping = SchemaMapping(parsimonious=True)
    mapping.add_literal_type(LiteralTypeInfo(XSD.string, "stringType", "STRING", "STRING"))
    mapping.add_class(ClassMapping(
        class_iri="http://x/Person",
        shape_name="http://x/shapes#Person",
        node_type_name="personType",
        label="Person",
        properties={
            "http://x/name": PropertyMapping(
                predicate="http://x/name", mode=MODE_KEY_VALUE,
                pg_key="name", datatype=XSD.string, min_count=1, max_count=1,
            ),
            "http://x/knows": PropertyMapping(
                predicate="http://x/knows", mode=MODE_EDGE, rel_type="knows",
                resource_targets={"http://x/Person": "Person"},
                min_count=0, max_count=UNBOUNDED,
            ),
        },
        local_predicates=("http://x/name", "http://x/knows"),
    ))
    return mapping


class TestLookups:
    def test_forward_class_lookup(self):
        mapping = build_mapping()
        assert mapping.label_for_class("http://x/Person") == "Person"
        assert mapping.label_for_class("http://x/Nope") is None

    def test_backward_label_lookup(self):
        mapping = build_mapping()
        assert mapping.class_for_label("Person") == "http://x/Person"

    def test_property_resolution_with_class_context(self):
        mapping = build_mapping()
        prop = mapping.property_for(["http://x/Person"], "http://x/name")
        assert prop.pg_key == "name"

    def test_property_resolution_without_context_scans_classes(self):
        mapping = build_mapping()
        prop = mapping.property_for([], "http://x/knows")
        assert prop.rel_type == "knows"

    def test_unknown_property_returns_none(self):
        assert build_mapping().property_for([], "http://x/ghost") is None

    def test_backward_predicate_lookups(self):
        mapping = build_mapping()
        assert mapping.predicate_for_rel("knows") == "http://x/knows"
        assert mapping.predicate_for_key("name") == "http://x/name"
        assert mapping.predicate_for_rel("ghost") is None

    def test_datatype_for_key(self):
        assert build_mapping().datatype_for_key("name") == XSD.string

    def test_literal_info_for_label(self):
        info = build_mapping().literal_info_for_label("STRING")
        assert info.datatype == XSD.string
        assert build_mapping().literal_info_for_label("YEAR") is None

    def test_fallback_registration(self):
        mapping = build_mapping()
        mapping.add_fallback(PropertyMapping(
            predicate="http://x/extra", mode=MODE_EDGE, rel_type="extra",
        ))
        assert mapping.property_for([], "http://x/extra").rel_type == "extra"


class TestConflicts:
    def test_rel_type_name_conflict_detected(self):
        mapping = build_mapping()
        with pytest.raises(TransformError):
            mapping.add_fallback(PropertyMapping(
                predicate="http://other/knows", mode=MODE_EDGE, rel_type="knows",
            ))

    def test_record_key_conflict_detected(self):
        mapping = build_mapping()
        conflicting = ClassMapping(
            class_iri="http://x/Other",
            shape_name="http://x/shapes#Other",
            node_type_name="otherType",
            label="Other",
            properties={
                "http://other/name": PropertyMapping(
                    predicate="http://other/name", mode=MODE_KEY_VALUE,
                    pg_key="name", datatype=XSD.string,
                ),
            },
        )
        with pytest.raises(TransformError):
            mapping.add_class(conflicting)


class TestPersistence:
    def test_json_round_trip(self):
        mapping = build_mapping()
        again = SchemaMapping.from_json(mapping.to_json())
        assert again.parsimonious == mapping.parsimonious
        assert again.label_for_class("http://x/Person") == "Person"
        prop = again.property_for(["http://x/Person"], "http://x/knows")
        assert prop.mode == MODE_EDGE
        assert prop.max_count == UNBOUNDED
        assert again.datatype_for_key("name") == XSD.string

    def test_json_round_trip_of_real_transformation(self, uni_shapes):
        result = transform_schema(uni_shapes)
        again = SchemaMapping.from_json(result.mapping.to_json())
        assert set(again.classes) == set(result.mapping.classes)
        assert again.rel_types == result.mapping.rel_types
        assert again.pg_keys == result.mapping.pg_keys

    def test_local_predicates_survive_json(self):
        again = SchemaMapping.from_json(build_mapping().to_json())
        class_mapping = again.class_mapping("http://x/Person")
        assert set(class_mapping.local_predicates) == {
            "http://x/name", "http://x/knows",
        }
