"""Unit tests for the schema transformation F_st (Section 4.1 rules)."""

import pytest

from repro.core import (
    DEFAULT_OPTIONS,
    MODE_EDGE,
    MODE_KEY_VALUE,
    MONOTONE_OPTIONS,
    TransformOptions,
    transform_schema,
)
from repro.namespaces import XSD
from repro.pgschema import CardinalityKey, UNBOUNDED as PG_UNBOUNDED, UniqueKey
from repro.shacl import parse_shacl

PREFIXES = """
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
"""


def transform(body: str, options: TransformOptions = DEFAULT_OPTIONS):
    return transform_schema(parse_shacl(PREFIXES + body), options)


class TestNodeShapeRule:
    BODY = """
    shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
      sh:property [ sh:path :name ; sh:datatype xsd:string ;
                    sh:minCount 1 ; sh:maxCount 1 ] .
    """

    def test_node_type_created_with_label(self):
        result = transform(self.BODY)
        node_type = result.pg_schema.node_types["personType"]
        assert node_type.labels == {"Person"}

    def test_iri_record_key_declared(self):
        result = transform(self.BODY)
        node_type = result.pg_schema.node_types["personType"]
        assert "iri" in node_type.properties

    def test_unique_key_emitted(self):
        result = transform(self.BODY)
        assert UniqueKey("Person", "iri") in result.pg_schema.keys

    def test_mapping_records_class(self):
        result = transform(self.BODY)
        assert result.mapping.label_for_class("http://x/Person") == "Person"
        assert result.mapping.class_for_label("Person") == "http://x/Person"


class TestInheritanceRule:
    BODY = """
    shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
      sh:property [ sh:path :name ; sh:datatype xsd:string ;
                    sh:minCount 1 ; sh:maxCount 1 ] .
    shapes:Student a sh:NodeShape ; sh:targetClass :Student ;
      sh:node shapes:Person ;
      sh:property [ sh:path :regNo ; sh:datatype xsd:string ;
                    sh:minCount 1 ; sh:maxCount 1 ] .
    """

    def test_parent_types_linked(self):
        result = transform(self.BODY)
        student = result.pg_schema.node_types["studentType"]
        assert student.parents == ("personType",)

    def test_inherited_property_mappings_folded(self):
        result = transform(self.BODY)
        student_mapping = result.mapping.class_mapping("http://x/Student")
        assert "http://x/name" in student_mapping.properties
        assert student_mapping.local_predicates == ("http://x/regNo",)


class TestTable1Cardinalities:
    def body(self, min_count, max_count):
        max_line = f"sh:maxCount {max_count} ;" if max_count is not None else ""
        return f"""
        shapes:A a sh:NodeShape ; sh:targetClass :A ;
          sh:property [ sh:path :p ; sh:datatype xsd:string ;
                        sh:minCount {min_count} ; {max_line} ] .
        """

    def spec(self, min_count, max_count):
        result = transform(self.body(min_count, max_count))
        node_type = result.pg_schema.node_types["aType"]
        key = result.mapping.class_mapping("http://x/A").properties["http://x/p"].pg_key
        return node_type.properties[key]

    def test_1_1_mandatory_scalar(self):
        spec = self.spec(1, 1)
        assert not spec.optional and not spec.array

    def test_0_1_optional_scalar(self):
        spec = self.spec(0, 1)
        assert spec.optional and not spec.array

    def test_0_unbounded_optional_array(self):
        spec = self.spec(0, None)
        assert spec.optional and spec.array and spec.array_max is None

    def test_0_n_bounded_array(self):
        spec = self.spec(0, 4)
        assert spec.array and spec.array_max == 4

    def test_1_n_mandatory_array(self):
        spec = self.spec(1, 4)
        assert not spec.optional and spec.array_min == 1 and spec.array_max == 4

    def test_m_n_array(self):
        spec = self.spec(2, 5)
        assert spec.array_min == 2 and spec.array_max == 5


class TestSingleNonLiteralRule:
    BODY = """
    shapes:Professor a sh:NodeShape ; sh:targetClass :Professor ;
      sh:property [ sh:path :worksFor ; sh:nodeKind sh:IRI ;
                    sh:class :Department ; sh:minCount 1 ; sh:maxCount 1 ] .
    shapes:Department a sh:NodeShape ; sh:targetClass :Department .
    """

    def test_edge_type_created(self):
        result = transform(self.BODY)
        edge = result.pg_schema.edge_types["worksForType"]
        assert edge.label == "worksFor"
        assert edge.source_types == ("professorType",)
        assert edge.target_types == ("departmentType",)

    def test_cardinality_key_emitted(self):
        result = transform(self.BODY)
        keys = [k for k in result.pg_schema.keys if isinstance(k, CardinalityKey)]
        assert keys[0].bounds() == (1, 1)
        assert keys[0].target_labels == ("Department",)

    def test_mapping_is_edge_mode(self):
        result = transform(self.BODY)
        prop = result.mapping.class_mapping("http://x/Professor").properties[
            "http://x/worksFor"
        ]
        assert prop.mode == MODE_EDGE
        assert prop.resource_targets == {"http://x/Department": "Department"}


class TestMultiLiteralRule:
    BODY = """
    shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
      sh:property [ sh:path :dob ;
        sh:or ( [ sh:datatype xsd:string ] [ sh:datatype xsd:date ]
                [ sh:datatype xsd:gYear ] ) ; sh:minCount 0 ] .
    """

    def test_literal_node_types_created(self):
        result = transform(self.BODY)
        names = set(result.pg_schema.node_types)
        assert {"stringType", "dateType", "gYearType"} <= names

    def test_literal_types_carry_datatype_iri(self):
        result = transform(self.BODY)
        assert result.pg_schema.node_types["gYearType"].annotations["iri"] == XSD.gYear

    def test_edge_targets_are_alternatives(self):
        result = transform(self.BODY)
        edge = result.pg_schema.edge_types["dobType"]
        assert set(edge.target_types) == {"stringType", "dateType", "gYearType"}

    def test_cardinality_key_unbounded(self):
        result = transform(self.BODY)
        key = [k for k in result.pg_schema.keys if isinstance(k, CardinalityKey)][0]
        assert key.upper == PG_UNBOUNDED


class TestHeterogeneousRule:
    BODY = """
    shapes:GS a sh:NodeShape ; sh:targetClass :GS ;
      sh:property [ sh:path :takesCourse ;
        sh:or ( [ sh:nodeKind sh:IRI ; sh:class :Course ]
                [ sh:datatype xsd:string ] ) ; sh:minCount 1 ] .
    shapes:Course a sh:NodeShape ; sh:targetClass :Course .
    """

    def test_mixed_targets(self):
        result = transform(self.BODY)
        edge = result.pg_schema.edge_types["takesCourseType"]
        assert set(edge.target_types) == {"stringType", "courseType"}

    def test_mapping_records_both_target_kinds(self):
        result = transform(self.BODY)
        prop = result.mapping.class_mapping("http://x/GS").properties[
            "http://x/takesCourse"
        ]
        assert prop.literal_targets == {XSD.string: "STRING"}
        assert prop.resource_targets == {"http://x/Course": "Course"}


class TestShapeRefRule:
    BODY = """
    shapes:A a sh:NodeShape ; sh:targetClass :A .
    shapes:B a sh:NodeShape ; sh:targetClass :B ;
      sh:property [ sh:path :rel ; sh:node shapes:A ; sh:minCount 0 ] .
    """

    def test_shape_targets_tracked_separately(self):
        result = transform(self.BODY)
        prop = result.mapping.class_mapping("http://x/B").properties["http://x/rel"]
        assert prop.shape_targets == {"http://x/shapes#A": "A"}
        assert prop.resource_targets == {}


class TestExternalClassRule:
    BODY = """
    shapes:B a sh:NodeShape ; sh:targetClass :B ;
      sh:property [ sh:path :rel ; sh:nodeKind sh:IRI ;
                    sh:class :NoShapeClass ; sh:minCount 0 ] .
    """

    def test_external_class_gets_node_type(self):
        result = transform(self.BODY)
        assert result.mapping.label_for_class("http://x/NoShapeClass") is not None

    def test_external_class_not_from_shape(self):
        result = transform(self.BODY)
        mapping = result.mapping.class_mapping("http://x/NoShapeClass")
        assert mapping.from_shape is False


class TestGlobalRealization:
    BODY = """
    shapes:A a sh:NodeShape ; sh:targetClass :A ;
      sh:property [ sh:path :p ; sh:datatype xsd:string ;
                    sh:minCount 1 ; sh:maxCount 1 ] .
    shapes:B a sh:NodeShape ; sh:targetClass :B ;
      sh:property [ sh:path :p ; sh:datatype xsd:integer ;
                    sh:minCount 1 ; sh:maxCount 1 ] .
    """

    def test_conflicting_datatypes_force_edge_everywhere(self):
        result = transform(self.BODY)
        prop_a = result.mapping.class_mapping("http://x/A").properties["http://x/p"]
        prop_b = result.mapping.class_mapping("http://x/B").properties["http://x/p"]
        assert prop_a.mode == MODE_EDGE
        assert prop_b.mode == MODE_EDGE

    def test_same_datatype_stays_key_value(self):
        result = transform("""
        shapes:A a sh:NodeShape ; sh:targetClass :A ;
          sh:property [ sh:path :p ; sh:datatype xsd:string ;
                        sh:minCount 1 ; sh:maxCount 1 ] .
        shapes:B a sh:NodeShape ; sh:targetClass :B ;
          sh:property [ sh:path :p ; sh:datatype xsd:string ;
                        sh:minCount 1 ; sh:maxCount 1 ] .
        """)
        prop = result.mapping.class_mapping("http://x/A").properties["http://x/p"]
        assert prop.mode == MODE_KEY_VALUE


class TestNonParsimoniousMode:
    BODY = """
    shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
      sh:property [ sh:path :name ; sh:datatype xsd:string ;
                    sh:minCount 1 ; sh:maxCount 1 ] .
    """

    def test_single_literal_becomes_edge(self):
        result = transform(self.BODY, MONOTONE_OPTIONS)
        prop = result.mapping.class_mapping("http://x/Person").properties[
            "http://x/name"
        ]
        assert prop.mode == MODE_EDGE
        assert "stringType" in result.pg_schema.node_types

    def test_parsimonious_flag_recorded(self):
        assert transform(self.BODY).mapping.parsimonious is True
        assert transform(self.BODY, MONOTONE_OPTIONS).mapping.parsimonious is False


class TestLangStringNeverKeyValue:
    def test_langstring_routes_to_edge(self):
        result = transform("""
        shapes:A a sh:NodeShape ; sh:targetClass :A ;
          sh:property [ sh:path :p ;
            sh:datatype <http://www.w3.org/1999/02/22-rdf-syntax-ns#langString> ;
            sh:minCount 1 ; sh:maxCount 1 ] .
        """)
        prop = result.mapping.class_mapping("http://x/A").properties["http://x/p"]
        assert prop.mode == MODE_EDGE
