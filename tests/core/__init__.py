"""Test package."""
