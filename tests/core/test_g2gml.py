"""Tests for the G2GML mapping emitter."""

from repro.core import render_g2gml, transform_schema
from repro.datasets import university_shapes
from repro.shacl import parse_shacl


def g2g_for(shapes_text: str) -> str:
    schema = parse_shacl(shapes_text)
    result = transform_schema(schema)
    return render_g2gml(result.mapping)


SHAPES = """
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :nick ; sh:datatype xsd:string ; sh:minCount 0 ] ;
  sh:property [ sh:path :knows ; sh:nodeKind sh:IRI ; sh:class :Person ;
                sh:minCount 0 ] ;
  sh:property [ sh:path :note ;
     sh:or ( [ sh:datatype xsd:string ] [ sh:datatype xsd:gYear ] ) ;
     sh:minCount 0 ] .
"""


class TestNodeMaps:
    def test_node_map_with_type_pattern(self):
        text = g2g_for(SHAPES)
        assert "(e:Person {iri: e, name: name, nick: nick})" in text
        assert "?e rdf:type <http://x/Person> ." in text

    def test_mandatory_property_is_plain_pattern(self):
        text = g2g_for(SHAPES)
        assert "?e <http://x/name> ?name ." in text

    def test_optional_property_wrapped(self):
        text = g2g_for(SHAPES)
        assert "OPTIONAL { ?e <http://x/nick> ?nick }" in text

    def test_prefix_header(self):
        assert g2g_for(SHAPES).startswith("PREFIX rdf:")


class TestEdgeMaps:
    def test_resource_edge_map(self):
        text = g2g_for(SHAPES)
        assert "(e1:Person)-[:knows]->(e2:Person)" in text
        assert "?e1 <http://x/knows> ?e2 ." in text

    def test_literal_node_edge_maps_with_datatype_filter(self):
        text = g2g_for(SHAPES)
        assert "(e1:Person)-[:note]->(v:STRING {value: v})" in text
        assert "(e1:Person)-[:note]->(v:YEAR {value: v})" in text
        assert "FILTER(datatype(?v) = <http://www.w3.org/2001/XMLSchema#gYear>)" in text


class TestUniversityFixture:
    def test_covers_every_shape(self):
        result = transform_schema(university_shapes())
        text = render_g2gml(result.mapping)
        for label in ("uni_Person", "uni_Student", "uni_GraduateStudent",
                      "uni_Department", "uni_University"):
            assert f"(e:{label}" in text

    def test_heterogeneous_takes_course_has_both_edge_kinds(self):
        result = transform_schema(university_shapes())
        text = render_g2gml(result.mapping)
        assert "(e1:uni_GraduateStudent)-[:uni_takesCourse]->(e2:uni_Course)" in text
        assert "(v:STRING {value: v})" in text

    def test_deterministic(self):
        result = transform_schema(university_shapes())
        assert render_g2gml(result.mapping) == render_g2gml(result.mapping)
