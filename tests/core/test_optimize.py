"""Tests for non-parsimonious graph compaction (paper future work)."""

import pytest

from repro.core import (
    DEFAULT_OPTIONS,
    MONOTONE_OPTIONS,
    S3PG,
    apply_delta,
    optimize,
    pg_to_rdf,
)
from repro.datasets import university_graph, university_shapes
from repro.pgschema import check_conformance
from repro.rdf import graphs_equal_modulo_bnodes, parse_turtle


@pytest.fixture
def nonpars(uni_graph, uni_shapes):
    return S3PG(MONOTONE_OPTIONS).transform(uni_graph, uni_shapes)


class TestExactness:
    def test_equals_direct_parsimonious_transform(self, uni_graph, uni_shapes, nonpars):
        pars = S3PG(DEFAULT_OPTIONS).transform(uni_graph, uni_shapes)
        optimized = optimize(nonpars.transformed)
        assert optimized.graph.structurally_equal(pars.graph)

    def test_equals_parsimonious_on_synthetic_data(self, small_dbpedia):
        nonpars = S3PG(MONOTONE_OPTIONS).transform(
            small_dbpedia.graph, small_dbpedia.shapes
        )
        pars = S3PG(DEFAULT_OPTIONS).transform(
            small_dbpedia.graph, small_dbpedia.shapes
        )
        optimized = optimize(nonpars.transformed)
        assert optimized.graph.structurally_equal(pars.graph)

    def test_optimized_graph_conforms_to_new_schema(self, nonpars):
        optimized = optimize(nonpars.transformed)
        report = check_conformance(
            optimized.graph, optimized.schema_result.pg_schema
        )
        assert report.conforms, [str(v) for v in report.violations[:3]]

    def test_information_still_preserved(self, uni_graph, nonpars):
        optimized = optimize(nonpars.transformed)
        reconstructed = pg_to_rdf(optimized.graph, optimized.schema_result.mapping)
        assert graphs_equal_modulo_bnodes(uni_graph, reconstructed)


class TestStats:
    def test_folding_counted(self, nonpars):
        optimized = optimize(nonpars.transformed)
        assert optimized.stats.edges_folded > 0
        assert optimized.stats.edges_folded == optimized.stats.record_values_created
        assert optimized.stats.literal_nodes_removed > 0

    def test_shared_literal_nodes_survive_if_still_referenced(self, uni_shapes):
        # Two entities share a heterogeneous literal value; folding only
        # removes nodes with no remaining references.
        graph = parse_turtle("""
        @prefix : <http://example.org/university#> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        :a a :Person ; :name "X" ; :dob "1999"^^xsd:gYear .
        :b a :Person ; :name "Y" ; :dob "1999"^^xsd:gYear .
        """)
        result = S3PG(MONOTONE_OPTIONS).transform(graph, uni_shapes)
        optimized = optimize(result.transformed)
        # dob is genuinely multi-typed in the schema: its literal node
        # must NOT be folded.
        assert any(
            node.properties.get("value") == "1999"
            for node in optimized.graph.nodes.values()
        )


class TestPipelineIntegration:
    def test_convert_incrementally_then_compact(self, uni_graph, uni_shapes):
        """The intended usage: monotone conversion while evolving, then
        compaction once the schema stabilizes."""
        result = S3PG(MONOTONE_OPTIONS).transform(uni_graph, uni_shapes)
        delta = parse_turtle("""
        @prefix : <http://example.org/university#> .
        :carol a :Person ; :name "Carol" .
        """)
        apply_delta(result.transformed, added=delta)
        optimized = optimize(result.transformed)
        pars = S3PG(DEFAULT_OPTIONS).transform(uni_graph | delta, uni_shapes)
        assert optimized.graph.structurally_equal(pars.graph)

    def test_rejects_non_parsimonious_target(self, nonpars):
        with pytest.raises(ValueError):
            optimize(nonpars.transformed, options=MONOTONE_OPTIONS)

    def test_idempotent_on_parsimonious_input(self, uni_graph, uni_shapes):
        pars = S3PG(DEFAULT_OPTIONS).transform(uni_graph, uni_shapes)
        before = pars.graph.canonical_form()
        optimized = optimize(pars.transformed)
        assert optimized.graph.canonical_form() == before
        assert optimized.stats.edges_folded == 0


class TestFallbackCarryOver:
    def test_fallback_predicates_survive_compaction(self, small_dbpedia):
        """Class-level triples (rdfs:subClassOf) converted via fallback
        must still conform after compaction."""
        result = S3PG(MONOTONE_OPTIONS).transform(
            small_dbpedia.graph, small_dbpedia.shapes
        )
        optimized = optimize(result.transformed)
        report = check_conformance(
            optimized.graph, optimized.schema_result.pg_schema
        )
        assert report.conforms, [str(v) for v in report.violations[:3]]
