"""Property-based tests for the S3PG transformation invariants.

Randomly generated shape schemas plus conforming instance data are pushed
through the transformation, and the paper's three guarantees are checked:

* information preservation: ``M(F_dt(G)) == G`` and ``N(F_st(S)) == S``;
* semantics preservation (positive direction): conforming RDF maps to a
  conforming PG;
* monotonicity: converting a random split ``G = G1 ∪ Δ`` incrementally
  equals converting ``G`` at once.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_OPTIONS,
    MONOTONE_OPTIONS,
    S3PG,
    apply_delta,
    pg_to_rdf,
    pgschema_to_shacl,
    shape_schemas_equivalent,
)
from repro.namespaces import RDF_TYPE, XSD
from repro.pgschema import check_conformance
from repro.rdf import Graph, IRI, Literal, Triple, graphs_equal_modulo_bnodes
from repro.shacl import (
    ClassType,
    LiteralType,
    NodeShape,
    PropertyShape,
    ShapeSchema,
    UNBOUNDED,
)

_CLASS_NAMES = ["Alpha", "Beta", "Gamma", "Delta"]
_DATATYPES = [XSD.string, XSD.integer, XSD.date, XSD.gYear]


@st.composite
def shape_schemas(draw) -> ShapeSchema:
    n_classes = draw(st.integers(min_value=1, max_value=4))
    classes = _CLASS_NAMES[:n_classes]
    schema = ShapeSchema()
    for index, name in enumerate(classes):
        n_props = draw(st.integers(min_value=0, max_value=3))
        property_shapes = []
        for prop_index in range(n_props):
            path = f"http://x/{name.lower()}P{prop_index}"
            kind = draw(st.sampled_from(["lit", "cls", "multi", "hetero"]))
            if kind == "lit":
                datatype = draw(st.sampled_from(_DATATYPES))
                value_types = (LiteralType(datatype),)
            elif kind == "cls":
                target = draw(st.sampled_from(classes))
                value_types = (ClassType(f"http://x/{target}"),)
            elif kind == "multi":
                dts = draw(st.lists(st.sampled_from(_DATATYPES), min_size=2,
                                    max_size=3, unique=True))
                value_types = tuple(LiteralType(dt) for dt in dts)
            else:
                datatype = draw(st.sampled_from(_DATATYPES))
                target = draw(st.sampled_from(classes))
                value_types = (LiteralType(datatype), ClassType(f"http://x/{target}"))
            min_count = draw(st.integers(min_value=0, max_value=1))
            max_count = draw(st.sampled_from([1, 3, UNBOUNDED]))
            if max_count != UNBOUNDED and max_count < min_count:
                max_count = min_count
            property_shapes.append(PropertyShape(
                path=path, value_types=value_types,
                min_count=min_count, max_count=max_count,
            ))
        parents = ()
        if index > 0 and draw(st.booleans()):
            parents = (f"http://x/shapes#{classes[index - 1]}",)
        schema.add(NodeShape(
            name=f"http://x/shapes#{name}",
            target_class=f"http://x/{name}",
            extends=parents,
            property_shapes=property_shapes,
        ))
    return schema


def _literal_for(rng_text: str, datatype: str, index: int) -> Literal:
    if datatype == XSD.integer:
        return Literal(str(1000 + index), XSD.integer)
    if datatype == XSD.date:
        return Literal(f"2020-01-{(index % 28) + 1:02d}", XSD.date)
    if datatype == XSD.gYear:
        return Literal(str(1900 + index % 100), XSD.gYear)
    return Literal(f"{rng_text}{index}", XSD.string)


@st.composite
def conforming_data(draw, schema: ShapeSchema) -> Graph:
    graph = Graph()
    counts = {}
    # Create 1-3 entities per shape, typed with the class and ancestors'.
    for shape in schema:
        count = draw(st.integers(min_value=1, max_value=3))
        counts[shape.name] = count
        class_iri = shape.target_class
        for i in range(count):
            entity = IRI(f"{class_iri}_{i}")
            graph.add(Triple(entity, IRI(RDF_TYPE), IRI(class_iri)))
            for ancestor in schema.ancestors(shape.name):
                graph.add(Triple(
                    entity, IRI(RDF_TYPE), IRI(schema[ancestor].target_class)
                ))
    for shape in schema:
        class_iri = shape.target_class
        for i in range(counts[shape.name]):
            entity = IRI(f"{class_iri}_{i}")
            for phi in schema.effective_property_shapes(shape.name):
                max_values = 2 if phi.max_count == UNBOUNDED else int(phi.max_count)
                n_values = draw(st.integers(
                    min_value=phi.min_count, max_value=max(phi.min_count, min(max_values, 2))
                ))
                for v in range(n_values):
                    vt = draw(st.sampled_from(list(phi.value_types)))
                    if isinstance(vt, LiteralType):
                        obj = _literal_for("v", vt.datatype, v + i)
                    else:
                        target_shape = schema.shape_for_class(vt.cls)
                        target_count = counts.get(
                            target_shape.name if target_shape else "", 1
                        )
                        obj = IRI(f"{vt.cls}_{v % max(1, target_count)}")
                    graph.add(Triple(entity, IRI(phi.path), obj))
    return graph


@st.composite
def schema_and_data(draw):
    schema = draw(shape_schemas())
    graph = draw(conforming_data(schema))
    return schema, graph


@given(shape_schemas())
@settings(max_examples=30, deadline=None)
def test_n_inverts_fst(schema):
    """N(F_st(S_G)) == S_G for random shape schemas (Proposition 4.1)."""
    result = S3PG().transform_schema(schema)
    assert shape_schemas_equivalent(schema, pgschema_to_shacl(result.mapping))


@given(schema_and_data())
@settings(max_examples=25, deadline=None)
def test_m_inverts_fdt_parsimonious(pair):
    """M(F_dt(G)) == G (Proposition 4.1, parsimonious model)."""
    schema, graph = pair
    result = S3PG(DEFAULT_OPTIONS).transform(graph, schema)
    assert graphs_equal_modulo_bnodes(graph, pg_to_rdf(result.graph, result.mapping))


@given(schema_and_data())
@settings(max_examples=25, deadline=None)
def test_m_inverts_fdt_non_parsimonious(pair):
    """M(F_dt(G)) == G (non-parsimonious model)."""
    schema, graph = pair
    result = S3PG(MONOTONE_OPTIONS).transform(graph, schema)
    assert graphs_equal_modulo_bnodes(graph, pg_to_rdf(result.graph, result.mapping))


@given(schema_and_data())
@settings(max_examples=20, deadline=None)
def test_semantics_preservation_positive(pair):
    """G ⊨ S_G implies F_dt(G) ⊨ S_PG (Proposition 4.2, forward)."""
    from repro.shacl import validate

    schema, graph = pair
    if not validate(graph, schema).conforms:
        return  # generator occasionally violates inherited cardinalities
    result = S3PG(DEFAULT_OPTIONS).transform(graph, schema)
    assert check_conformance(result.graph, result.pg_schema).conforms


@given(schema_and_data(), st.randoms(use_true_random=False))
@settings(max_examples=20, deadline=None)
def test_monotonicity_random_split(pair, rng):
    """F(G) == F(G1) + Δ-apply for a random split G = G1 ∪ Δ."""
    schema, graph = pair
    triples = sorted(graph, key=lambda t: t.n3())
    split = rng.randint(0, len(triples))
    type_pred = IRI(RDF_TYPE)
    # Keep all type triples in the base so entity typing is stable.
    base = Graph(t for t in triples if t.p == type_pred)
    rest = [t for t in triples if t.p != type_pred]
    base.update(rest[:split])
    delta = Graph(rest[split:])

    s3pg = S3PG(MONOTONE_OPTIONS)
    incremental = s3pg.transform(base, schema)
    apply_delta(incremental.transformed, added=delta)
    from_scratch = s3pg.transform(graph, schema)
    assert incremental.graph.structurally_equal(from_scratch.graph)
