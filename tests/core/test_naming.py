"""Tests for deterministic PG naming."""

from repro.core import NameResolver, sanitize, type_name_for
from repro.rdf import PrefixMap


class TestSanitize:
    def test_passthrough(self):
        assert sanitize("Person") == "Person"

    def test_replaces_special_characters(self):
        assert sanitize("a-b.c d") == "a_b_c_d"

    def test_leading_digit_prefixed(self):
        assert sanitize("1abc") == "_1abc"

    def test_empty_falls_back(self):
        assert sanitize("///") == "x"


class TestTypeNames:
    def test_lower_camel_with_suffix(self):
        assert type_name_for("Person") == "personType"

    def test_prefixed_label(self):
        assert type_name_for("dbp_address") == "dbp_addressType"

    def test_empty(self):
        assert type_name_for("") == "anonType"


class TestNameResolver:
    def test_prefixed_naming(self):
        resolver = NameResolver(PrefixMap({"dbp": "http://dbpedia.org/property/"}))
        assert resolver.name_for("http://dbpedia.org/property/address") == "dbp_address"

    def test_local_name_fallback(self):
        resolver = NameResolver(PrefixMap({}))
        assert resolver.name_for("http://unknown.example/ns#Thing") == "Thing"

    def test_without_prefixes(self):
        resolver = NameResolver(use_prefixes=False)
        assert resolver.name_for("http://dbpedia.org/property/address") == "address"

    def test_stable_across_calls(self):
        resolver = NameResolver()
        first = resolver.name_for("http://x/a")
        assert resolver.name_for("http://x/a") == first

    def test_collisions_disambiguated(self):
        resolver = NameResolver(PrefixMap({}), use_prefixes=False)
        a = resolver.name_for("http://one.example/Thing")
        b = resolver.name_for("http://two.example/Thing")
        assert a != b

    def test_inverse_lookup(self):
        resolver = NameResolver()
        name = resolver.name_for("http://x/a")
        assert resolver.iri_for(name) == "http://x/a"
        assert resolver.iri_for("unknown") is None

    def test_known_names_registry(self):
        resolver = NameResolver()
        resolver.name_for("http://x/a")
        assert "http://x/a" in resolver.known_names().values()
