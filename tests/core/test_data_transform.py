"""Unit tests for the data transformation F_dt (Algorithm 1)."""

import pytest

from repro.core import (
    DEFAULT_OPTIONS,
    MONOTONE_OPTIONS,
    TransformOptions,
    DataTransformer,
    edge_id_for,
    encode_literal_value,
    literal_node_id,
    node_id_for,
    transform_schema,
)
from repro.errors import TransformError
from repro.namespaces import XSD
from repro.rdf import BlankNode, IRI, Literal, parse_turtle
from repro.shacl import parse_shacl

PREFIXES = """
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
"""

SHAPES = PREFIXES + """
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :hobby ; sh:datatype xsd:string ; sh:minCount 0 ] ;
  sh:property [ sh:path :friend ; sh:nodeKind sh:IRI ; sh:class :Person ;
                sh:minCount 0 ] ;
  sh:property [ sh:path :dob ;
     sh:or ( [ sh:datatype xsd:date ] [ sh:datatype xsd:gYear ] ) ;
     sh:minCount 0 ] .
"""

DATA_PREFIX = (
    "@prefix : <http://x/> . "
    "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
)


def run(data_body: str, options: TransformOptions = DEFAULT_OPTIONS,
        shapes_text: str = SHAPES):
    schema_result = transform_schema(parse_shacl(shapes_text), options)
    transformer = DataTransformer(schema_result, options)
    return transformer.transform(parse_turtle(DATA_PREFIX + data_body))


class TestIdentifiers:
    def test_node_id_for_iri(self):
        assert node_id_for(IRI("http://x/a")) == "http://x/a"

    def test_node_id_for_bnode(self):
        assert node_id_for(BlankNode("b1")) == "_:b1"

    def test_literal_node_id_deterministic(self):
        a = literal_node_id(Literal("1999", XSD.gYear))
        b = literal_node_id(Literal("1999", XSD.gYear))
        assert a == b and a.startswith("lit:")

    def test_literal_node_id_distinguishes_datatype_and_lang(self):
        ids = {
            literal_node_id(Literal("v")),
            literal_node_id(Literal("v", XSD.gYear)),
            literal_node_id(Literal("v", language="en")),
        }
        assert len(ids) == 3

    def test_long_lexical_bounded(self):
        lid = literal_node_id(Literal("x" * 500))
        assert len(lid) < 200

    def test_long_lexicals_do_not_collide(self):
        a = literal_node_id(Literal("x" * 100 + "a"))
        b = literal_node_id(Literal("x" * 100 + "b"))
        assert a != b

    def test_edge_id(self):
        assert edge_id_for("s", "rel", "o") == "s|rel|o"


class TestEncodeLiteralValue:
    def test_integer_native(self):
        assert encode_literal_value(Literal("42", XSD.integer)) == 42

    def test_non_canonical_integer_stays_lexical(self):
        assert encode_literal_value(Literal("007", XSD.integer)) == "007"

    def test_boolean_native(self):
        assert encode_literal_value(Literal("true", XSD.boolean)) is True

    def test_float_round_trip_guard(self):
        assert encode_literal_value(Literal("2.5", XSD.double)) == 2.5
        assert encode_literal_value(Literal("2.50", XSD.double)) == "2.50"

    def test_string_kept(self):
        assert encode_literal_value(Literal("abc")) == "abc"

    def test_untyped_mode_keeps_lexical(self):
        assert encode_literal_value(Literal("42", XSD.integer), typed=False) == "42"


class TestPhase1Entities:
    def test_entity_nodes_with_labels_and_iri(self):
        result = run(':p a :Person ; :name "P" .')
        node = result.graph.get_node("http://x/p")
        assert node.labels == {"Person"}
        assert node.properties["iri"] == "http://x/p"

    def test_multiple_types_multiple_labels(self):
        shapes = SHAPES + """
        shapes:Student a sh:NodeShape ; sh:targetClass :Student ;
          sh:node shapes:Person .
        """
        result = run(':p a :Person, :Student ; :name "P" .', shapes_text=shapes)
        assert result.graph.get_node("http://x/p").labels == {"Person", "Student"}

    def test_blank_node_entity(self):
        result = run('_:b a :Person ; :name "B" .')
        node = result.graph.get_node("_:b")
        assert node.properties["iri"] == "_:b"

    def test_stats_counters(self):
        result = run(':p a :Person ; :name "P" ; :hobby "chess", "go" .')
        assert result.stats.entity_nodes == 1
        assert result.stats.key_values == 3
        assert result.stats.triples_processed == 4


class TestKeyValues:
    def test_single_literal_stored_as_record_key(self):
        result = run(':p a :Person ; :name "P" .')
        assert result.graph.get_node("http://x/p").properties["name"] == "P"

    def test_multi_valued_array(self):
        result = run(':p a :Person ; :hobby "chess", "go" .')
        hobby = result.graph.get_node("http://x/p").properties["hobby"]
        assert sorted(hobby) == ["chess", "go"]

    def test_cardinality_overflow_promotes_to_array(self):
        # Two names where the schema allows one: keep both (lossless),
        # letting conformance checking flag the violation.
        result = run(':p a :Person ; :name "A", "B" .')
        assert sorted(result.graph.get_node("http://x/p").properties["name"]) == [
            "A", "B",
        ]

    def test_datatype_mismatch_routes_to_literal_node(self):
        result = run(':p a :Person ; :name "5"^^xsd:integer .')
        node = result.graph.get_node("http://x/p")
        assert "name" not in node.properties
        assert result.stats.literal_nodes == 1

    def test_lang_tagged_value_routes_to_literal_node(self):
        result = run(':p a :Person ; :name "P"@en .')
        assert result.stats.literal_nodes == 1
        lit_nodes = [n for n in result.graph.nodes.values()
                     if n.properties.get("lang") == "en"]
        assert len(lit_nodes) == 1


class TestEdges:
    def test_entity_object_becomes_edge(self):
        result = run("""
        :a a :Person ; :name "A" ; :friend :b .
        :b a :Person ; :name "B" .
        """)
        edge = result.graph.get_edge("http://x/a|friend|http://x/b")
        assert edge.labels == {"friend"}

    def test_duplicate_edges_not_created(self):
        result = run("""
        :a a :Person ; :name "A" ; :friend :b .
        :b a :Person ; :name "B" .
        """)
        assert result.stats.edges == 1

    def test_untyped_iri_object_becomes_resource_node(self):
        result = run(':a a :Person ; :name "A" ; :friend :ghost .')
        ghost = result.graph.get_node("http://x/ghost")
        assert ghost.labels == {"Resource"}

    def test_untyped_subject_becomes_resource_node(self):
        result = run(':ghost :friend :other .')
        assert result.graph.get_node("http://x/ghost").labels == {"Resource"}


class TestLiteralNodes:
    def test_multi_type_literal_becomes_node(self):
        result = run(':a a :Person ; :name "A" ; :dob "1999"^^xsd:gYear .')
        lit_id = literal_node_id(Literal("1999", XSD.gYear))
        node = result.graph.get_node(lit_id)
        assert node.labels == {"YEAR"}
        assert node.properties["value"] == "1999"
        assert node.properties["dtype"] == XSD.gYear

    def test_literal_nodes_deduplicated(self):
        result = run("""
        :a a :Person ; :name "A" ; :dob "1999"^^xsd:gYear .
        :b a :Person ; :name "B" ; :dob "1999"^^xsd:gYear .
        """)
        assert result.stats.literal_nodes == 1
        assert result.stats.edges == 2


class TestUnknownHandling:
    def test_fallback_converts_unknown_predicate(self):
        result = run(':a a :Person ; :name "A" ; :unknown "v" .')
        assert result.stats.literal_nodes == 1

    def test_fallback_converts_unknown_class(self):
        result = run(":a a :Mystery .")
        node = result.graph.get_node("http://x/a")
        assert node.labels == {"Mystery"}

    def test_skip_mode_drops_unknown(self):
        options = TransformOptions(on_unknown="skip")
        result = run(':a a :Person ; :name "A" ; :unknown "v" .', options)
        assert result.stats.skipped == 1
        assert result.stats.literal_nodes == 0

    def test_error_mode_raises(self):
        options = TransformOptions(on_unknown="error")
        with pytest.raises(TransformError):
            run(':a a :Person ; :name "A" ; :unknown "v" .', options)

    def test_invalid_on_unknown_rejected(self):
        with pytest.raises(ValueError):
            TransformOptions(on_unknown="whatever")


class TestNonParsimonious:
    def test_all_literals_become_nodes(self):
        result = run(':p a :Person ; :name "P" .', MONOTONE_OPTIONS)
        node = result.graph.get_node("http://x/p")
        assert "name" not in node.properties
        assert result.stats.literal_nodes == 1
        assert result.stats.edges == 1

    def test_mismatched_options_rejected(self):
        schema_result = transform_schema(parse_shacl(SHAPES), DEFAULT_OPTIONS)
        with pytest.raises(TransformError):
            DataTransformer(schema_result, MONOTONE_OPTIONS)
