"""Tests for monotone schema evolution (Section 4.1.1 / Prop. 4.3)."""

import pytest

from repro.core import (
    DEFAULT_OPTIONS,
    MONOTONE_OPTIONS,
    SchemaTransformer,
    transform_schema,
)
from repro.core.schema_evolution import (
    SchemaDeltaStats,
    SchemaEvolutionConflict,
    apply_schema_delta,
    merge_shape_schemas,
)
from repro.errors import TransformError
from repro.pgschema import render_pgschema
from repro.shacl import parse_shacl

PREFIXES = """
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
"""

BASE = parse_shacl(PREFIXES + """
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :knows ; sh:nodeKind sh:IRI ; sh:class :Person ;
                sh:minCount 0 ] .
""")

NEW_SHAPE = parse_shacl(PREFIXES + """
shapes:Company a sh:NodeShape ; sh:targetClass :Company ;
  sh:property [ sh:path :label ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :employs ; sh:nodeKind sh:IRI ; sh:class :Person ;
                sh:minCount 0 ] .
""")

CONFLICTING = parse_shacl(PREFIXES + """
shapes:Robot a sh:NodeShape ; sh:targetClass :Robot ;
  sh:property [ sh:path :name ; sh:datatype xsd:integer ;
                sh:minCount 1 ; sh:maxCount 1 ] .
""")


class TestMonotoneExtension:
    def test_non_parsimonious_delta_equals_full(self):
        result = transform_schema(BASE, MONOTONE_OPTIONS)
        apply_schema_delta(result, BASE, NEW_SHAPE)
        merged = merge_shape_schemas(BASE, NEW_SHAPE)
        full = transform_schema(merged, MONOTONE_OPTIONS)
        assert (
            set(render_pgschema(result.pg_schema).splitlines())
            == set(render_pgschema(full.pg_schema).splitlines())
        )
        assert set(result.mapping.classes) == set(full.mapping.classes)

    def test_parsimonious_delta_without_conflict(self):
        result = transform_schema(BASE, DEFAULT_OPTIONS)
        stats = apply_schema_delta(result, BASE, NEW_SHAPE)
        assert stats.node_types_added >= 1
        assert "companyType" in result.pg_schema.node_types
        merged = merge_shape_schemas(BASE, NEW_SHAPE)
        full = transform_schema(merged, DEFAULT_OPTIONS)
        assert (
            set(render_pgschema(result.pg_schema).splitlines())
            == set(render_pgschema(full.pg_schema).splitlines())
        )

    def test_existing_elements_untouched(self):
        result = transform_schema(BASE, MONOTONE_OPTIONS)
        person_before = result.pg_schema.node_types["personType"]
        apply_schema_delta(result, BASE, NEW_SHAPE)
        assert result.pg_schema.node_types["personType"] is person_before

    def test_stats_reported(self):
        result = transform_schema(BASE, MONOTONE_OPTIONS)
        stats = apply_schema_delta(result, BASE, NEW_SHAPE)
        assert isinstance(stats, SchemaDeltaStats)
        assert stats.shapes_added == ["http://x/shapes#Company"]
        assert stats.keys_added > 0


class TestConflictDetection:
    def test_parsimonious_realization_conflict_raises(self):
        # :name was key/value (string); Robot declares it integer — under
        # the merged schema it must be edge-realized: conflict.
        result = transform_schema(BASE, DEFAULT_OPTIONS)
        with pytest.raises(SchemaEvolutionConflict) as err:
            apply_schema_delta(result, BASE, CONFLICTING)
        assert "http://x/name" in err.value.predicates

    def test_non_parsimonious_has_no_conflicts(self):
        result = transform_schema(BASE, MONOTONE_OPTIONS)
        apply_schema_delta(result, BASE, CONFLICTING)
        assert "robotType" in result.pg_schema.node_types

    def test_redefining_existing_shape_rejected(self):
        result = transform_schema(BASE, MONOTONE_OPTIONS)
        with pytest.raises(TransformError):
            apply_schema_delta(result, BASE, BASE)


class TestDataAfterSchemaDelta:
    def test_new_shape_usable_by_incremental_data(self):
        """Schema delta + data delta: the full evolving-graph workflow."""
        from repro.core import DataTransformer, apply_delta
        from repro.rdf import parse_turtle

        result = transform_schema(BASE, MONOTONE_OPTIONS)
        data = parse_turtle("""
        @prefix : <http://x/> .
        :p a :Person ; :name "P" .
        """)
        transformed = DataTransformer(result, MONOTONE_OPTIONS).transform(data)
        apply_schema_delta(result, BASE, NEW_SHAPE)
        delta = parse_turtle("""
        @prefix : <http://x/> .
        :acme a :Company ; :label "ACME" ; :employs :p .
        """)
        apply_delta(transformed, added=delta)
        acme = transformed.graph.get_node("http://x/acme")
        assert "Company" in acme.labels
        assert "http://x/acme|employs|http://x/p" in transformed.graph.edges
