"""Tests for the inverse mappings M and N (information preservation)."""

import pytest

from repro.core import (
    DEFAULT_OPTIONS,
    MONOTONE_OPTIONS,
    pg_to_rdf,
    pgschema_to_shacl,
    property_shapes_equivalent,
    scalar_to_lexical,
    shape_schemas_equivalent,
    transform,
)
from repro.datasets import university_graph, university_shapes
from repro.errors import TransformError
from repro.namespaces import XSD
from repro.rdf import graphs_equal_modulo_bnodes, parse_turtle
from repro.shacl import LiteralType, PropertyShape, parse_shacl


class TestScalarToLexical:
    def test_booleans(self):
        assert scalar_to_lexical(True) == "true"
        assert scalar_to_lexical(False) == "false"

    def test_numbers(self):
        assert scalar_to_lexical(42) == "42"
        assert scalar_to_lexical(2.5) == "2.5"

    def test_strings(self):
        assert scalar_to_lexical("x") == "x"


class TestM:
    def test_university_round_trip(self, uni_graph, uni_shapes, uni_result):
        reconstructed = pg_to_rdf(uni_result.graph, uni_result.mapping)
        assert graphs_equal_modulo_bnodes(uni_graph, reconstructed)

    def test_non_parsimonious_round_trip(self, uni_graph, uni_shapes):
        result = transform(uni_graph, uni_shapes, options=MONOTONE_OPTIONS)
        reconstructed = pg_to_rdf(result.graph, result.mapping)
        assert graphs_equal_modulo_bnodes(uni_graph, reconstructed)

    def test_round_trip_with_typed_values(self):
        shapes = parse_shacl("""
        @prefix sh: <http://www.w3.org/ns/shacl#> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        @prefix : <http://x/> .
        @prefix shapes: <http://x/shapes#> .
        shapes:A a sh:NodeShape ; sh:targetClass :A ;
          sh:property [ sh:path :n ; sh:datatype xsd:integer ;
                        sh:minCount 1 ; sh:maxCount 1 ] ;
          sh:property [ sh:path :flag ; sh:datatype xsd:boolean ;
                        sh:minCount 0 ; sh:maxCount 1 ] .
        """)
        graph = parse_turtle("""
        @prefix : <http://x/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        :a a :A ; :n 42 ; :flag true .
        """)
        result = transform(graph, shapes)
        assert graphs_equal_modulo_bnodes(graph, pg_to_rdf(result.graph, result.mapping))

    def test_round_trip_with_fallback_triples(self, uni_shapes):
        graph = parse_turtle("""
        @prefix : <http://example.org/university#> .
        :bob a :Person ; :name "Bob" ; :unknownProp "value" ; :links :somewhere .
        """)
        result = transform(graph, uni_shapes)
        assert graphs_equal_modulo_bnodes(graph, pg_to_rdf(result.graph, result.mapping))

    def test_unknown_label_raises(self, uni_result):
        pg = uni_result.graph.copy()
        pg.add_node("rogue", labels={"NotMapped"}, properties={"iri": "http://x/r"})
        with pytest.raises(TransformError):
            pg_to_rdf(pg, uni_result.mapping)

    def test_missing_iri_property_raises(self, uni_result):
        pg = uni_result.graph.copy()
        pg.add_node("rogue", labels=set())
        with pytest.raises(TransformError):
            pg_to_rdf(pg, uni_result.mapping)


class TestN:
    def test_university_round_trip(self, uni_shapes, uni_result):
        reconstructed = pgschema_to_shacl(uni_result.mapping)
        assert shape_schemas_equivalent(uni_shapes, reconstructed)

    def test_non_parsimonious_round_trip(self, uni_graph, uni_shapes):
        result = transform(uni_graph, uni_shapes, options=MONOTONE_OPTIONS)
        reconstructed = pgschema_to_shacl(result.mapping)
        assert shape_schemas_equivalent(uni_shapes, reconstructed)

    def test_external_classes_excluded(self, uni_shapes):
        graph = parse_turtle("""
        @prefix : <http://example.org/university#> .
        :x a :UnshapedClass .
        """)
        result = transform(graph, uni_shapes)
        reconstructed = pgschema_to_shacl(result.mapping)
        assert shape_schemas_equivalent(uni_shapes, reconstructed)


class TestEquivalenceHelpers:
    def test_property_shape_order_insensitive(self):
        a = PropertyShape("http://x/p", (LiteralType(XSD.string), LiteralType(XSD.date)))
        b = PropertyShape("http://x/p", (LiteralType(XSD.date), LiteralType(XSD.string)))
        assert property_shapes_equivalent(a, b)

    def test_property_shape_cardinality_sensitive(self):
        a = PropertyShape("http://x/p", (LiteralType(XSD.string),), 0, 1)
        b = PropertyShape("http://x/p", (LiteralType(XSD.string),), 1, 1)
        assert not property_shapes_equivalent(a, b)

    def test_schema_name_set_sensitive(self, uni_shapes):
        from repro.shacl import ShapeSchema

        assert not shape_schemas_equivalent(uni_shapes, ShapeSchema())
