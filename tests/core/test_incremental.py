"""Tests for incremental (monotone) maintenance (Definition 3.4)."""

import pytest

from repro.core import (
    IncrementalTransformer,
    MONOTONE_OPTIONS,
    S3PG,
    apply_delta,
)
from repro.datasets import make_evolution_pair
from repro.rdf import Graph, parse_turtle
from repro.shacl import parse_shacl

SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :friend ; sh:nodeKind sh:IRI ; sh:class :Person ;
                sh:minCount 0 ] ;
  sh:property [ sh:path :note ;
     sh:or ( [ sh:datatype xsd:string ] [ sh:datatype xsd:integer ] ) ;
     sh:minCount 0 ] .
""")

PREFIX = "@prefix : <http://x/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"

BASE = PREFIX + """
:a a :Person ; :name "A" ; :friend :b ; :note "n1" .
:b a :Person ; :name "B" .
"""


def full_transform(graph: Graph):
    return S3PG(MONOTONE_OPTIONS).transform(graph, SHAPES)


class TestAdditions:
    def test_added_entity_appears(self):
        result = full_transform(parse_turtle(BASE))
        delta = parse_turtle(PREFIX + ':c a :Person ; :name "C" .')
        stats = apply_delta(result.transformed, added=delta)
        assert result.graph.get_node("http://x/c").labels == {"Person"}
        assert stats.added_triples == 2

    def test_added_edge_appears(self):
        result = full_transform(parse_turtle(BASE))
        delta = parse_turtle(PREFIX + ":b :friend :a .")
        apply_delta(result.transformed, added=delta)
        assert "http://x/b|friend|http://x/a" in result.graph.edges

    def test_duplicate_addition_is_idempotent(self):
        result = full_transform(parse_turtle(BASE))
        before = result.graph.canonical_form()
        apply_delta(result.transformed, added=parse_turtle(BASE))
        assert result.graph.canonical_form() == before

    def test_addition_matches_full_transform(self):
        base = parse_turtle(BASE)
        delta = parse_turtle(PREFIX + """
        :c a :Person ; :name "C" ; :friend :a ; :note 5 .
        """)
        incremental = full_transform(base)
        apply_delta(incremental.transformed, added=delta)
        from_scratch = full_transform(base | delta)
        assert incremental.graph.structurally_equal(from_scratch.graph)

    def test_new_type_on_existing_resource_upgrades_it(self):
        result = full_transform(parse_turtle(PREFIX + ':a a :Person ; :name "A" ; :friend :c .'))
        assert result.graph.get_node("http://x/c").labels == {"Resource"}
        apply_delta(result.transformed, added=parse_turtle(PREFIX + ':c a :Person .'))
        assert result.graph.get_node("http://x/c").labels == {"Person"}


class TestDeletions:
    def test_removed_edge_disappears(self):
        result = full_transform(parse_turtle(BASE))
        apply_delta(result.transformed,
                    removed=parse_turtle(PREFIX + ":a :friend :b ."))
        assert "http://x/a|friend|http://x/b" not in result.graph.edges

    def test_removed_literal_value_gcs_orphan_node(self):
        result = full_transform(parse_turtle(BASE))
        n_before = result.graph.node_count()
        apply_delta(result.transformed,
                    removed=parse_turtle(PREFIX + ':a :note "n1" .'))
        assert result.graph.node_count() == n_before - 1

    def test_shared_literal_node_survives_partial_removal(self):
        base = parse_turtle(BASE + ':b :note "n1" .')
        result = full_transform(base)
        apply_delta(result.transformed,
                    removed=parse_turtle(PREFIX + ':a :note "n1" .'))
        # :b still references the "n1" literal node.
        assert any(
            n.properties.get("value") == "n1" for n in result.graph.nodes.values()
        )

    def test_deletion_matches_full_transform(self):
        base = parse_turtle(BASE)
        removed = parse_turtle(PREFIX + ':a :note "n1" .')
        incremental = full_transform(base)
        apply_delta(incremental.transformed, removed=removed)
        from_scratch = full_transform(base - removed)
        assert incremental.graph.structurally_equal(from_scratch.graph)

    def test_removing_type_label(self):
        result = full_transform(parse_turtle(BASE))
        apply_delta(result.transformed,
                    removed=parse_turtle(PREFIX + ":a a :Person ."))
        assert "Person" not in result.graph.get_node("http://x/a").labels

    def test_removing_unknown_triple_is_noop(self):
        result = full_transform(parse_turtle(BASE))
        before = result.graph.canonical_form()
        apply_delta(result.transformed,
                    removed=parse_turtle(PREFIX + ':zz :note "gone" .'))
        assert result.graph.canonical_form() == before


class TestMonotonicityProperty:
    def test_definition_3_4_on_synthetic_snapshots(self, small_dbpedia):
        pair = make_evolution_pair(small_dbpedia.graph, seed=5)
        assert pair.check_invariants()
        from repro.shapes import extract_shapes

        shapes = extract_shapes(pair.new | pair.old)
        s3pg = S3PG(MONOTONE_OPTIONS)
        old_result = s3pg.transform(pair.old, shapes)
        new_result = s3pg.transform(pair.new, shapes)
        apply_delta(old_result.transformed, added=pair.added, removed=pair.removed)
        assert old_result.graph.structurally_equal(new_result.graph)

    def test_union_decomposition(self):
        """F(G1 ∪ Δ) == F(G1) ∪ F(Δ) for disjoint additions."""
        g1 = parse_turtle(BASE)
        delta = parse_turtle(PREFIX + ':c a :Person ; :name "C" .')
        left = full_transform(g1 | delta)
        right = full_transform(g1)
        apply_delta(right.transformed, added=delta)
        assert left.graph.structurally_equal(right.graph)

    def test_incremental_transformer_reusable(self):
        result = full_transform(parse_turtle(BASE))
        inc = IncrementalTransformer(result.transformed)
        inc.apply_additions(parse_turtle(PREFIX + ':c a :Person ; :name "C" .'))
        inc.apply_additions(parse_turtle(PREFIX + ":c :friend :a ."))
        assert "http://x/c|friend|http://x/a" in result.graph.edges


class TestRemoveReAddRoundTrip:
    """Deletion followed by re-addition must land exactly where a
    from-scratch transform of the final graph lands (no resurrected
    stale state, no lost labels)."""

    def _roundtrip(self, fragment: str):
        base = parse_turtle(BASE)
        delta = parse_turtle(PREFIX + fragment)
        incremental = full_transform(base)
        apply_delta(incremental.transformed, removed=delta)
        apply_delta(incremental.transformed, added=delta)
        from_scratch = full_transform(base)
        assert incremental.graph.structurally_equal(from_scratch.graph)

    def test_literal_value_roundtrip(self):
        self._roundtrip(':a :note "n1" .')

    def test_name_property_roundtrip(self):
        self._roundtrip(':a :name "A" .')

    def test_type_roundtrip(self):
        self._roundtrip(":a a :Person .")

    def test_edge_roundtrip(self):
        self._roundtrip(":a :friend :b .")

    def test_detyped_node_keeps_resource_label(self):
        result = full_transform(parse_turtle(BASE))
        apply_delta(result.transformed,
                    removed=parse_turtle(PREFIX + ":b a :Person ."))
        # :b is still referenced by :a's friend edge, so it must remain
        # as an untyped Resource (what a from-scratch transform yields).
        node = result.graph.get_node("http://x/b")
        assert node.labels == {"Resource"}

    def test_edge_removal_gcs_orphaned_subject(self):
        graph = parse_turtle(PREFIX + ':a a :Person ; :name "A" ; :friend :b .')
        result = full_transform(graph)
        removed = parse_turtle(
            PREFIX + ':a a :Person . :a :name "A" . :a :friend :b .'
        )
        apply_delta(result.transformed, removed=removed)
        from_scratch = full_transform(graph - removed)
        assert result.graph.structurally_equal(from_scratch.graph)

    def test_multivalued_note_demotes_to_scalar(self):
        base = parse_turtle(BASE + ':a :note "n2" .')
        result = full_transform(base)
        removed = parse_turtle(PREFIX + ':a :note "n2" .')
        apply_delta(result.transformed, removed=removed)
        from_scratch = full_transform(base - removed)
        assert result.graph.structurally_equal(from_scratch.graph)


class TestStoreRouting:
    """A store passed to the transformer stays index- and
    statistics-consistent (regression: deltas used to bypass the store,
    leaving the planner catalogs and version counter stale)."""

    def _store_pair(self):
        from repro.pg import PropertyGraphStore

        result = full_transform(parse_turtle(BASE))
        store = PropertyGraphStore(result.graph)
        return result, store

    def test_store_version_advances_per_delta(self):
        result, store = self._store_pair()
        before = store.version
        apply_delta(result.transformed,
                    added=parse_turtle(PREFIX + ':c a :Person ; :name "C" .'),
                    store=store)
        assert store.version > before

    def test_catalogs_track_additions(self):
        result, store = self._store_pair()
        apply_delta(result.transformed,
                    added=parse_turtle(PREFIX + ':c a :Person ; :name "C" ; :friend :a .'),
                    store=store)
        assert store.catalog_discrepancies() == []
        assert store.rel_type_count("friend") == 2

    def test_catalogs_track_removals(self):
        result, store = self._store_pair()
        apply_delta(result.transformed,
                    removed=parse_turtle(PREFIX + ':a :friend :b . :a :note "n1" .'),
                    store=store)
        assert store.catalog_discrepancies() == []
        assert store.rel_type_count("friend") == 0

    def test_store_must_wrap_the_transformed_graph(self):
        from repro.errors import TransformError
        from repro.pg import PropertyGraphStore

        result = full_transform(parse_turtle(BASE))
        foreign = PropertyGraphStore()
        with pytest.raises(TransformError):
            IncrementalTransformer(result.transformed, store=foreign)


class TestProbeAdditions:
    def test_probe_accepts_known_triples(self):
        result = full_transform(parse_turtle(BASE))
        inc = IncrementalTransformer(result.transformed)
        inc.probe_additions(parse_turtle(PREFIX + ':c a :Person ; :name "C" .'))

    def test_probe_rejects_unknown_under_error_mode(self):
        from repro.core import TransformOptions
        from repro.errors import TransformError

        options = TransformOptions(parsimonious=False, on_unknown="error")
        result = S3PG(options).transform(parse_turtle(BASE), SHAPES)
        inc = IncrementalTransformer(result.transformed)
        with pytest.raises(TransformError):
            inc.probe_additions(parse_turtle(PREFIX + ":a :mystery :b ."))

    def test_probe_does_not_mutate(self):
        result = full_transform(parse_turtle(BASE))
        inc = IncrementalTransformer(result.transformed)
        before = result.graph.canonical_form()
        inc.probe_additions(parse_turtle(PREFIX + ':c a :Person ; :name "C" .'))
        assert result.graph.canonical_form() == before
