"""Test package."""
