"""Failure-injection tests for two-directional semantics preservation.

Definition 3.3 requires both directions: conforming RDF maps to a
conforming PG, and *violating* RDF maps to a *violating* PG.  These tests
take the conforming university fixture, inject one violation of each
constraint family, and check that the violation is (a) caught by the
SHACL validator on the RDF side and (b) still visible to the PG-Schema
conformance checker after transformation.
"""

import pytest

from repro.core import transform
from repro.datasets import university_graph, university_shapes
from repro.namespaces import UNI, XSD
from repro.pgschema import check_conformance
from repro.rdf import IRI, Literal, Triple
from repro.shacl import validate


def _bob():
    return IRI(UNI.bob)


def _inject(mutation):
    graph = university_graph()
    mutation(graph)
    return graph


VIOLATIONS = {
    "missing mandatory property": lambda g: g.remove(
        Triple(_bob(), IRI(UNI.name), Literal("Bob"))
    ),
    "max cardinality exceeded": lambda g: g.add(
        Triple(_bob(), IRI(UNI.regNo), Literal("second-reg"))
    ),
    "wrong datatype": lambda g: (
        g.remove(Triple(_bob(), IRI(UNI.regNo), Literal("Bs12"))),
        g.add(Triple(_bob(), IRI(UNI.regNo), Literal("12", XSD.integer))),
    ),
    "mandatory edge missing": lambda g: g.remove(
        Triple(IRI(UNI.alice), IRI(UNI.worksFor), IRI(UNI.cs))
    ),
    "edge target of wrong class": lambda g: (
        g.remove(Triple(IRI(UNI.alice), IRI(UNI.worksFor), IRI(UNI.cs))),
        g.add(Triple(IRI(UNI.alice), IRI(UNI.worksFor), IRI(UNI.db))),
    ),
    "min cardinality of hetero property": lambda g: (
        g.remove(Triple(_bob(), IRI(UNI.takesCourse), IRI(UNI.db))),
        g.remove(Triple(_bob(), IRI(UNI.takesCourse), Literal("Intro to Logic"))),
    ),
}


@pytest.fixture(scope="module")
def shapes():
    return university_shapes()


class TestBothDirections:
    @pytest.mark.parametrize("name", sorted(VIOLATIONS))
    def test_rdf_violation_detected(self, name, shapes):
        graph = _inject(VIOLATIONS[name])
        assert not validate(graph, shapes).conforms, name

    @pytest.mark.parametrize("name", sorted(VIOLATIONS))
    def test_pg_violation_detected(self, name, shapes):
        graph = _inject(VIOLATIONS[name])
        result = transform(graph, shapes)
        report = check_conformance(result.graph, result.pg_schema)
        assert not report.conforms, name

    def test_baseline_clean_fixture_conforms_both_sides(self, shapes):
        graph = university_graph()
        assert validate(graph, shapes).conforms
        result = transform(graph, shapes)
        assert check_conformance(result.graph, result.pg_schema).conforms
