"""Integration tests: the paper's end-to-end claims at small scale.

These tests exercise the full pipeline the way the evaluation section
does — generate data, extract shapes, transform with all three methods,
query, and compare — asserting the qualitative results of Sections 5.1-5.4.
"""

import pytest

from repro.core import MONOTONE_OPTIONS, S3PG, pg_to_rdf, transform
from repro.datasets import dbpedia_workload
from repro.eval import (
    accuracy_experiment,
    load_dataset,
    monotonicity_experiment,
    run_all_transformations,
)
from repro.pgschema import check_conformance
from repro.rdf import graphs_equal_modulo_bnodes, parse_turtle
from repro.shacl import validate


@pytest.fixture(scope="module")
def bundle():
    return load_dataset("dbpedia2022", scale=0.12)


@pytest.fixture(scope="module")
def runs(bundle):
    return run_all_transformations(bundle)


class TestInformationPreservation:
    def test_s3pg_round_trips_the_whole_dataset(self, bundle):
        result = transform(bundle.graph, bundle.shapes)
        reconstructed = pg_to_rdf(result.graph, result.mapping)
        assert graphs_equal_modulo_bnodes(bundle.graph, reconstructed)

    def test_baselines_cannot_round_trip(self, bundle, runs):
        """The baselines drop triples; their PGs are strictly smaller."""
        s3pg_nodes = runs.s3pg_run.pg_stats.n_nodes
        assert runs.rdf2pg_run.pg_stats.n_nodes < s3pg_nodes
        assert runs.rdf2pg_result.stats.dropped_literals > 0


class TestSemanticsPreservation:
    def test_conforming_graph_conforming_pg(self, bundle):
        assert validate(bundle.graph, bundle.shapes).conforms
        result = transform(bundle.graph, bundle.shapes)
        assert check_conformance(result.graph, result.pg_schema).conforms

    def test_violating_graph_violating_pg(self, uni_shapes):
        """G ⊭ S_G implies F_dt(G) ⊭ S_PG (Definition 3.3, both ways)."""
        bad = parse_turtle("""
        @prefix : <http://example.org/university#> .
        :x a :Professor ; :name "NoDept" .
        """)  # Professor requires exactly one worksFor
        assert not validate(bad, uni_shapes).conforms
        result = transform(bad, uni_shapes)
        assert not check_conformance(result.graph, result.pg_schema).conforms


class TestQueryPreservation:
    def test_s3pg_answers_complete_for_every_workload_query(self, bundle, runs):
        workload = dbpedia_workload(bundle.spec)
        rows = accuracy_experiment(bundle, workload, runs)
        for row in rows:
            assert row.per_method["S3PG"].accuracy_percent == 100.0, row.qid
            assert row.per_method["S3PG"].spurious == 0, row.qid

    def test_baselines_lose_answers_on_heterogeneous_queries(self, bundle, runs):
        workload = dbpedia_workload(bundle.spec)
        rows = accuracy_experiment(bundle, workload, runs)
        hetero = [r for r in rows if r.category == "MT-Hetero (L+NL)"]
        assert min(r.per_method["rdf2pg"].accuracy_percent for r in hetero) < 90.0


class TestMonotonicity:
    def test_section_5_4_experiment(self, bundle):
        report = monotonicity_experiment(bundle)
        assert report.delta_matches_full
        assert report.delta_only_s < report.parsimonious_new_s

    def test_non_parsimonious_output_has_no_record_values(self, bundle):
        result = S3PG(MONOTONE_OPTIONS).transform(bundle.graph, bundle.shapes)
        for node in result.graph.nodes.values():
            keys = set(node.properties) - {"iri", "value", "dtype", "lang"}
            assert not keys, node.id


class TestTransformedGraphShape:
    def test_s3pg_produces_more_rel_types(self, runs):
        assert (
            runs.s3pg_run.pg_stats.n_rel_types
            >= runs.neosem_run.pg_stats.n_rel_types
        )

    def test_baselines_agree_with_each_other(self, runs):
        assert runs.neosem_run.pg_stats.n_nodes == runs.rdf2pg_run.pg_stats.n_nodes
        assert runs.neosem_run.pg_stats.n_edges == runs.rdf2pg_run.pg_stats.n_edges
