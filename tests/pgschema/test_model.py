"""Unit tests for the PG-Schema model (Definition 2.5)."""

import pytest

from repro.errors import SchemaError
from repro.namespaces import XSD
from repro.pgschema import (
    ANY,
    BOOLEAN,
    DATE,
    EdgeType,
    FLOAT,
    INTEGER,
    NodeType,
    PGSchema,
    PropertySpec,
    STRING,
    YEAR,
    content_type_for_datatype,
)


class TestContentTypes:
    @pytest.mark.parametrize(
        "datatype,expected",
        [
            (XSD.string, STRING),
            (XSD.integer, INTEGER),
            (XSD.int, INTEGER),
            (XSD.double, FLOAT),
            (XSD.decimal, FLOAT),
            (XSD.boolean, BOOLEAN),
            (XSD.date, DATE),
            (XSD.gYear, YEAR),
            ("http://custom/dt", ANY),
        ],
    )
    def test_mapping(self, datatype, expected):
        assert content_type_for_datatype(datatype) == expected


class TestPropertySpec:
    def test_render_plain(self):
        assert PropertySpec("name", STRING).render() == "name: STRING"

    def test_render_optional(self):
        assert PropertySpec("name", STRING, optional=True).render() == (
            "OPTIONAL name: STRING"
        )

    def test_render_unbounded_array(self):
        spec = PropertySpec("name", STRING, array=True)
        assert spec.render() == "name: STRING ARRAY {}"

    def test_render_bounded_array(self):
        spec = PropertySpec("name", STRING, array=True, array_min=1, array_max=5)
        assert spec.render() == "name: STRING ARRAY {1,5}"

    def test_render_min_only_array(self):
        spec = PropertySpec("name", STRING, array=True, array_min=2)
        assert spec.render() == "name: STRING ARRAY {2,*}"


def build_schema() -> PGSchema:
    schema = PGSchema()
    schema.add_node_type(NodeType(
        "personType", labels={"Person"},
        properties={"name": PropertySpec("name", STRING)},
    ))
    schema.add_node_type(NodeType(
        "studentType", labels={"Student"},
        properties={"regNo": PropertySpec("regNo", STRING)},
        parents=("personType",),
    ))
    schema.add_node_type(NodeType(
        "gsType", labels={"GS"}, parents=("studentType",),
    ))
    schema.add_edge_type(EdgeType(
        "knowsType", label="knows",
        source_types=("personType",), target_types=("personType",),
    ))
    return schema


class TestHierarchy:
    def test_ancestors(self):
        schema = build_schema()
        assert schema.ancestors("gsType") == ["studentType", "personType"]

    def test_descendants(self):
        schema = build_schema()
        assert set(schema.descendants("personType")) == {"studentType", "gsType"}
        assert schema.descendants("gsType") == []

    def test_ancestors_cycle_raises(self):
        schema = PGSchema()
        schema.add_node_type(NodeType("a", parents=("b",)))
        schema.add_node_type(NodeType("b", parents=("a",)))
        with pytest.raises(SchemaError):
            schema.ancestors("a")

    def test_ancestors_missing_parent_raises(self):
        schema = PGSchema()
        schema.add_node_type(NodeType("a", parents=("gone",)))
        with pytest.raises(SchemaError):
            schema.ancestors("a")

    def test_effective_properties_inherit(self):
        schema = build_schema()
        effective = schema.effective_properties("gsType")
        assert set(effective) == {"name", "regNo"}

    def test_effective_properties_local_override(self):
        schema = build_schema()
        schema.node_type("studentType").add_property(
            PropertySpec("name", STRING, optional=True)
        )
        effective = schema.effective_properties("studentType")
        assert effective["name"].optional

    def test_effective_labels(self):
        schema = build_schema()
        assert schema.effective_labels("gsType") == {"Person", "Student", "GS"}


class TestLookups:
    def test_node_type_lookup(self):
        schema = build_schema()
        assert schema.node_type("personType").labels == {"Person"}
        with pytest.raises(SchemaError):
            schema.node_type("missing")

    def test_edge_type_lookup(self):
        schema = build_schema()
        assert schema.edge_type("knowsType").label == "knows"
        with pytest.raises(SchemaError):
            schema.edge_type("missing")

    def test_contains(self):
        schema = build_schema()
        assert "personType" in schema and "knowsType" in schema
        assert "nope" not in schema

    def test_node_type_for_label(self):
        schema = build_schema()
        assert schema.node_type_for_label("Student").name == "studentType"
        assert schema.node_type_for_label("Robot") is None

    def test_edge_types_with_label(self):
        schema = build_schema()
        assert [t.name for t in schema.edge_types_with_label("knows")] == ["knowsType"]


class TestReferenceValidation:
    def test_valid_schema_passes(self):
        build_schema().validate_references()

    def test_dangling_parent(self):
        schema = build_schema()
        schema.add_node_type(NodeType("x", parents=("gone",)))
        with pytest.raises(SchemaError):
            schema.validate_references()

    def test_dangling_edge_endpoint(self):
        schema = build_schema()
        schema.add_edge_type(EdgeType("bad", label="b", source_types=("gone",)))
        with pytest.raises(SchemaError):
            schema.validate_references()
