"""Round-trip tests for the PG-Schema DDL (Figure 5 style)."""

import pytest

from repro.errors import ParseError
from repro.pgschema import (
    CardinalityKey,
    EdgeType,
    NodeType,
    PGSchema,
    PropertySpec,
    STRING,
    INTEGER,
    UNBOUNDED,
    UniqueKey,
    parse_pgschema_ddl,
    render_pgschema,
)


def build_schema() -> PGSchema:
    schema = PGSchema()
    schema.add_node_type(NodeType(
        "personType", labels={"Person"},
        properties={
            "iri": PropertySpec("iri", STRING),
            "nick": PropertySpec("nick", STRING, optional=True),
            "scores": PropertySpec("scores", INTEGER, array=True,
                                   array_min=1, array_max=3),
        },
        annotations={"iri_src": "http://x/Person"},
    ))
    schema.add_node_type(NodeType(
        "studentType", labels={"Student"},
        properties={"regNo": PropertySpec("regNo", STRING)},
        parents=("personType",),
    ))
    schema.add_node_type(NodeType(
        "stringType", labels={"STRING"},
        properties={"value": PropertySpec("value", STRING)},
        annotations={"iri": "http://www.w3.org/2001/XMLSchema#string"},
        is_literal_type=True,
    ))
    schema.add_edge_type(EdgeType(
        "knowsType", label="knows",
        source_types=("personType",),
        target_types=("personType", "stringType"),
        annotations={"iri": "http://x/knows"},
    ))
    schema.add_key(CardinalityKey("Person", "knows", 0, UNBOUNDED,
                                  ("Person", "STRING")))
    schema.add_key(UniqueKey("Person", "iri"))
    return schema


class TestRoundTrip:
    def test_node_types_preserved(self):
        again = parse_pgschema_ddl(render_pgschema(build_schema()))
        assert set(again.node_types) == {"personType", "studentType", "stringType"}

    def test_properties_preserved(self):
        again = parse_pgschema_ddl(render_pgschema(build_schema()))
        person = again.node_type("personType")
        assert person.properties["nick"].optional
        scores = person.properties["scores"]
        assert scores.array and scores.array_min == 1 and scores.array_max == 3

    def test_inheritance_preserved(self):
        again = parse_pgschema_ddl(render_pgschema(build_schema()))
        assert again.node_type("studentType").parents == ("personType",)

    def test_literal_flag_preserved(self):
        again = parse_pgschema_ddl(render_pgschema(build_schema()))
        assert again.node_type("stringType").is_literal_type

    def test_annotations_preserved(self):
        again = parse_pgschema_ddl(render_pgschema(build_schema()))
        assert again.node_type("stringType").annotations["iri"].endswith("#string")

    def test_edge_type_preserved(self):
        again = parse_pgschema_ddl(render_pgschema(build_schema()))
        edge = again.edge_type("knowsType")
        assert edge.label == "knows"
        assert edge.source_types == ("personType",)
        assert set(edge.target_types) == {"personType", "stringType"}
        assert edge.annotations["iri"] == "http://x/knows"

    def test_keys_preserved(self):
        again = parse_pgschema_ddl(render_pgschema(build_schema()))
        cardinality = [k for k in again.keys if isinstance(k, CardinalityKey)]
        unique = [k for k in again.keys if isinstance(k, UniqueKey)]
        assert cardinality[0].edge_label == "knows"
        assert cardinality[0].upper == UNBOUNDED
        assert set(cardinality[0].target_labels) == {"Person", "STRING"}
        assert unique[0] == UniqueKey("Person", "iri")

    def test_double_round_trip_is_stable(self):
        text1 = render_pgschema(build_schema())
        text2 = render_pgschema(parse_pgschema_ddl(text1))
        assert text1 == text2


class TestParserDetails:
    def test_comments_and_blank_lines_ignored(self):
        schema = parse_pgschema_ddl(
            "# comment\n\n// other comment\n(aType: A {iri: STRING})\n"
        )
        assert "aType" in schema.node_types

    def test_abstract_flag(self):
        schema = parse_pgschema_ddl("(aType: A ABSTRACT)")
        assert schema.node_type("aType").abstract

    def test_unknown_statement_raises(self):
        with pytest.raises(ParseError):
            parse_pgschema_ddl("THIS IS NOT DDL")

    def test_inheritance_before_definition_raises(self):
        with pytest.raises(ParseError):
            parse_pgschema_ddl("(aType: aType & parentType)")

    def test_bad_record_entry_raises(self):
        with pytest.raises(ParseError):
            parse_pgschema_ddl("(aType: A {this is broken})")

    def test_exact_cardinality_key(self):
        schema = parse_pgschema_ddl(
            "FOR (p: Professor) COUNT 1..1 OF T "
            "WITHIN (p)-[:worksFor]->(T: Department)"
        )
        key = schema.keys[0]
        assert key.lower == 1 and key.upper == 1
        assert key.target_labels == ("Department",)
