"""Tests for PG-Keys rendering (the paper's FOR ... COUNT ... syntax)."""

from repro.pgschema import UNBOUNDED, CardinalityKey, UniqueKey


class TestCardinalityKey:
    def test_render_exact_bounds(self):
        key = CardinalityKey("Professor", "worksFor", 1, 1, ("Department",))
        assert key.render() == (
            "FOR (p: Professor) COUNT 1..1 OF T "
            "WITHIN (p)-[:worksFor]->(T: Department)"
        )

    def test_render_unbounded_upper(self):
        key = CardinalityKey("GS", "takesCourse", 1, UNBOUNDED, ("Course",))
        assert "COUNT 1.. OF" in key.render()

    def test_render_multiple_targets_braced(self):
        key = CardinalityKey("P", "dob", 0, UNBOUNDED, ("DATE", "STRING", "YEAR"))
        assert "(T: {DATE | STRING | YEAR})" in key.render()

    def test_render_no_targets(self):
        key = CardinalityKey("P", "rel", 0, 2, ())
        assert key.render().endswith("(T)")

    def test_bounds(self):
        assert CardinalityKey("P", "r", 2, 5, ()).bounds() == (2, 5)


class TestUniqueKey:
    def test_render(self):
        key = UniqueKey("Person", "iri")
        assert key.render() == (
            "FOR (p: Person) EXCLUSIVE MANDATORY SINGLETON p.iri"
        )

    def test_keys_are_value_objects(self):
        assert UniqueKey("A", "iri") == UniqueKey("A", "iri")
        assert len({UniqueKey("A", "iri"), UniqueKey("A", "iri")}) == 1
