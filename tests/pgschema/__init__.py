"""Test package."""
