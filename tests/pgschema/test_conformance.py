"""Unit tests for PG-Schema conformance checking (Definition 2.6)."""

import pytest

from repro.pg import PropertyGraph
from repro.pgschema import (
    CardinalityKey,
    ConformanceChecker,
    EdgeType,
    INTEGER,
    NodeType,
    PGSchema,
    PropertySpec,
    STRING,
    UNBOUNDED,
    UniqueKey,
    check_conformance,
    property_value_matches,
)


def build_schema() -> PGSchema:
    schema = PGSchema()
    schema.add_node_type(NodeType(
        "personType", labels={"Person"},
        properties={
            "iri": PropertySpec("iri", STRING),
            "name": PropertySpec("name", STRING),
            "age": PropertySpec("age", INTEGER, optional=True),
        },
    ))
    schema.add_node_type(NodeType(
        "studentType", labels={"Student"},
        properties={"regNo": PropertySpec("regNo", STRING)},
        parents=("personType",),
    ))
    schema.add_node_type(NodeType(
        "courseType", labels={"Course"},
        properties={"iri": PropertySpec("iri", STRING)},
    ))
    schema.add_edge_type(EdgeType(
        "takesType", label="takes",
        source_types=("studentType",), target_types=("courseType",),
    ))
    return schema


def conforming_graph() -> PropertyGraph:
    pg = PropertyGraph()
    pg.add_node("s", labels={"Person", "Student"},
                properties={"iri": "http://x/s", "name": "S", "regNo": "1"})
    pg.add_node("c", labels={"Course"}, properties={"iri": "http://x/c"})
    pg.add_edge("s", "c", labels={"takes"})
    return pg


class TestPropertyValueMatching:
    def test_scalar_type_checks(self):
        assert property_value_matches("x", PropertySpec("k", STRING))
        assert not property_value_matches(5, PropertySpec("k", STRING))
        assert property_value_matches(5, PropertySpec("k", INTEGER))
        assert not property_value_matches(True, PropertySpec("k", INTEGER))

    def test_array_bounds(self):
        spec = PropertySpec("k", STRING, array=True, array_min=1, array_max=2)
        assert property_value_matches(["a"], spec)
        assert property_value_matches(["a", "b"], spec)
        assert not property_value_matches([], spec)
        assert not property_value_matches(["a", "b", "c"], spec)

    def test_scalar_accepted_as_singleton_array(self):
        spec = PropertySpec("k", STRING, array=True, array_min=1)
        assert property_value_matches("a", spec)

    def test_list_rejected_for_scalar_spec(self):
        assert not property_value_matches(["a"], PropertySpec("k", STRING))


class TestNodeConformance:
    def test_conforming_node(self):
        checker = ConformanceChecker(build_schema())
        pg = conforming_graph()
        assert "studentType" in checker.node_typing(pg.get_node("s"))

    def test_missing_required_property(self):
        checker = ConformanceChecker(build_schema())
        pg = PropertyGraph()
        node = pg.add_node("p", labels={"Person"}, properties={"iri": "u"})
        assert not checker.node_conforms(node, build_schema().node_type("personType"))

    def test_optional_property_may_be_absent(self):
        checker = ConformanceChecker(build_schema())
        pg = PropertyGraph()
        node = pg.add_node("p", labels={"Person"},
                           properties={"iri": "u", "name": "N"})
        assert checker.node_conforms(node, build_schema().node_type("personType"))

    def test_wrong_type_for_optional_property(self):
        schema = build_schema()
        checker = ConformanceChecker(schema)
        pg = PropertyGraph()
        node = pg.add_node("p", labels={"Person"},
                           properties={"iri": "u", "name": "N", "age": "old"})
        assert not checker.node_conforms(node, schema.node_type("personType"))

    def test_undeclared_property_violates_closed_record(self):
        schema = build_schema()
        checker = ConformanceChecker(schema)
        pg = PropertyGraph()
        node = pg.add_node("p", labels={"Person"},
                           properties={"iri": "u", "name": "N", "extra": 1})
        assert not checker.node_conforms(node, schema.node_type("personType"))

    def test_missing_label_fails(self):
        schema = build_schema()
        checker = ConformanceChecker(schema)
        pg = PropertyGraph()
        node = pg.add_node("p", labels=set(), properties={"iri": "u", "name": "N"})
        assert not checker.node_conforms(node, schema.node_type("personType"))

    def test_inherited_labels_required(self):
        schema = build_schema()
        checker = ConformanceChecker(schema)
        pg = PropertyGraph()
        # Student without the inherited Person label.
        node = pg.add_node("s", labels={"Student"},
                           properties={"iri": "u", "name": "N", "regNo": "1"})
        assert not checker.node_conforms(node, schema.node_type("studentType"))


class TestEdgeConformance:
    def test_conforming_edge(self):
        report = check_conformance(conforming_graph(), build_schema())
        assert report.conforms

    def test_wrong_target_type(self):
        pg = conforming_graph()
        pg.add_edge("s", "s", labels={"takes"})  # takes must target a Course
        report = check_conformance(pg, build_schema())
        assert not report.conforms
        assert any(v.kind == "edge" for v in report.violations)

    def test_unknown_relationship_type(self):
        pg = conforming_graph()
        pg.add_edge("s", "c", labels={"bogus"})
        assert not check_conformance(pg, build_schema()).conforms

    def test_subtype_accepted_at_supertype_endpoint(self):
        schema = build_schema()
        schema.add_edge_type(EdgeType(
            "knowsType", label="knows",
            source_types=("personType",), target_types=("personType",),
        ))
        pg = conforming_graph()
        pg.add_node("p2", labels={"Person"},
                    properties={"iri": "http://x/p2", "name": "P"})
        # Source is a Student (subtype of Person, with extra record keys).
        pg.add_edge("s", "p2", labels={"knows"})
        assert check_conformance(pg, schema).conforms


class TestKeys:
    def test_unique_key_satisfied(self):
        schema = build_schema()
        schema.add_key(UniqueKey("Person", "iri"))
        assert check_conformance(conforming_graph(), schema).conforms

    def test_unique_key_duplicate_detected(self):
        schema = build_schema()
        schema.add_key(UniqueKey("Person", "iri"))
        pg = conforming_graph()
        pg.add_node("dup", labels={"Person"},
                    properties={"iri": "http://x/s", "name": "D"})
        report = check_conformance(pg, schema)
        assert any("duplicate" in v.message for v in report.violations)

    def test_unique_key_missing_property_detected(self):
        schema = build_schema()
        schema.add_key(UniqueKey("Person", "iri"))
        pg = conforming_graph()
        pg.add_node("x", labels={"Person"}, properties={"name": "X"})
        report = check_conformance(pg, schema)
        assert any("missing mandatory" in v.message for v in report.violations)

    def test_cardinality_key_satisfied(self):
        schema = build_schema()
        schema.add_key(CardinalityKey("Student", "takes", 1, 2, ("Course",)))
        assert check_conformance(conforming_graph(), schema).conforms

    def test_cardinality_key_lower_bound_violated(self):
        schema = build_schema()
        schema.add_key(CardinalityKey("Student", "takes", 2, UNBOUNDED, ("Course",)))
        report = check_conformance(conforming_graph(), schema)
        assert any(v.kind == "key" for v in report.violations)

    def test_cardinality_key_upper_bound_violated(self):
        schema = build_schema()
        schema.add_key(CardinalityKey("Student", "takes", 0, 0, ("Course",)))
        assert not check_conformance(conforming_graph(), schema).conforms

    def test_cardinality_key_ignores_other_targets(self):
        schema = build_schema()
        schema.add_key(CardinalityKey("Student", "takes", 0, 0, ("Person",)))
        # The takes edge targets a Course, not a Person: count is 0.
        assert check_conformance(conforming_graph(), schema).conforms


class TestReport:
    def test_typing_maps_filled(self):
        report = check_conformance(conforming_graph(), build_schema())
        assert set(report.typing_nodes) == {"s", "c"}
        assert all(report.typing_nodes.values())

    def test_unmatched_node_reported(self):
        pg = conforming_graph()
        pg.add_node("alien", labels={"Alien"})
        report = check_conformance(pg, build_schema())
        assert not report.conforms
        assert report.typing_nodes["alien"] == []


class TestStrictLoose:
    """The paper's STRICT vs LOOSE graph-type options (Section 2.2)."""

    def test_loose_tolerates_untyped_elements(self):
        pg = conforming_graph()
        pg.add_node("alien", labels={"Alien"})
        schema = build_schema()
        assert not check_conformance(pg, schema).conforms
        assert check_conformance(pg, schema, mode="LOOSE").conforms

    def test_loose_still_enforces_keys(self):
        schema = build_schema()
        schema.add_key(UniqueKey("Person", "iri"))
        pg = conforming_graph()
        pg.add_node("dup", labels={"Person"},
                    properties={"iri": "http://x/s", "name": "D"})
        assert not check_conformance(pg, schema, mode="LOOSE").conforms

    def test_loose_typing_maps_still_filled(self):
        pg = conforming_graph()
        pg.add_node("alien", labels={"Alien"})
        report = check_conformance(pg, build_schema(), mode="LOOSE")
        assert report.typing_nodes["alien"] == []

    def test_invalid_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ConformanceChecker(build_schema(), mode="RELAXED")
