"""Test package."""
