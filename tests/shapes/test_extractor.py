"""Tests for the QSE-style shape extractor."""

from repro.namespaces import XSD
from repro.rdf import parse_turtle
from repro.shacl import (
    ClassType,
    LiteralType,
    PropertyShapeKind,
    UNBOUNDED,
    validate,
)
from repro.shapes import ExtractionConfig, extract_shapes

PREFIX = "@prefix : <http://x/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
PREFIX += "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"


def extract(body: str, config: ExtractionConfig | None = None):
    return extract_shapes(parse_turtle(PREFIX + body), config)


class TestBasicExtraction:
    def test_node_shape_per_class(self):
        schema = extract(':a a :A . :b a :B .')
        assert len(schema) == 2
        assert schema.shape_for_class("http://x/A") is not None

    def test_single_literal_property(self):
        schema = extract(':a a :A ; :name "v" .')
        phi = schema.shape_for_class("http://x/A").property_shapes[0]
        assert phi.value_types == (LiteralType(XSD.string),)
        assert phi.cardinality() == (1, 1)

    def test_optional_property_when_not_universal(self):
        schema = extract(':a a :A ; :name "v" . :b a :A .')
        phi = schema.shape_for_class("http://x/A").property_shapes[0]
        assert phi.min_count == 0

    def test_multi_valued_property_unbounded(self):
        schema = extract(':a a :A ; :name "v", "w" .')
        phi = schema.shape_for_class("http://x/A").property_shapes[0]
        assert phi.max_count == UNBOUNDED

    def test_class_constraint_from_typed_target(self):
        schema = extract(':a a :A ; :rel :b . :b a :B .')
        phi = schema.shape_for_class("http://x/A").property_shapes[0]
        assert phi.value_types == (ClassType("http://x/B"),)

    def test_untyped_target_contributes_nothing(self):
        schema = extract(':a a :A ; :rel :ghost ; :name "n" .')
        shape = schema.shape_for_class("http://x/A")
        assert shape.property_shape_for("http://x/rel") is None

    def test_heterogeneous_detection(self):
        schema = extract(':a a :A ; :mix "text", :b . :b a :B .')
        phi = schema.shape_for_class("http://x/A").property_shape_for("http://x/mix")
        assert phi.kind() == PropertyShapeKind.MULTI_HETERO

    def test_language_tags_become_langstring(self):
        from repro.rdf import Literal

        schema = extract(':a a :A ; :label "x"@en .')
        phi = schema.shape_for_class("http://x/A").property_shapes[0]
        assert phi.value_types == (LiteralType(Literal.LANG_STRING),)

    def test_most_specific_type_wins(self):
        schema = extract("""
        :Sub rdfs:subClassOf :Super .
        :a a :A ; :rel :b .
        :b a :Sub, :Super .
        """)
        phi = schema.shape_for_class("http://x/A").property_shape_for("http://x/rel")
        assert phi.value_types == (ClassType("http://x/Sub"),)

    def test_value_types_ordered_by_support(self):
        schema = extract("""
        :a a :A ; :d "2020-01-01"^^xsd:date .
        :b a :A ; :d "2020-01-02"^^xsd:date .
        :c a :A ; :d "x" .
        """)
        phi = schema.shape_for_class("http://x/A").property_shape_for("http://x/d")
        assert phi.value_types[0] == LiteralType(XSD.date)


class TestHierarchy:
    BODY = """
    :Student rdfs:subClassOf :Person .
    :p a :Person ; :name "P" .
    :s a :Student, :Person ; :name "S" ; :reg "1" .
    """

    def test_subclass_becomes_extends(self):
        schema = extract(self.BODY)
        student = schema.shape_for_class("http://x/Student")
        person = schema.shape_for_class("http://x/Person")
        assert person.name in student.extends

    def test_duplicate_inherited_property_removed(self):
        schema = extract(self.BODY)
        student = schema.shape_for_class("http://x/Student")
        assert student.property_shape_for("http://x/name") is None
        assert student.property_shape_for("http://x/reg") is not None

    def test_hierarchy_disabled(self):
        schema = extract(self.BODY, ExtractionConfig(derive_hierarchy=False))
        student = schema.shape_for_class("http://x/Student")
        assert student.extends == ()
        assert student.property_shape_for("http://x/name") is not None


class TestThresholds:
    def test_min_class_support(self):
        schema = extract(":a a :A . :b a :B . :b2 a :B .",
                         ExtractionConfig(min_class_support=2))
        assert schema.shape_for_class("http://x/A") is None
        assert schema.shape_for_class("http://x/B") is not None

    def test_min_property_support(self):
        body = ':a a :A ; :rare "v" .' + "".join(
            f" :e{i} a :A ." for i in range(9)
        )
        schema = extract(body, ExtractionConfig(min_property_support=0.5))
        assert schema.shape_for_class("http://x/A").property_shapes == []

    def test_min_type_confidence_prunes_outliers(self):
        body = ':a a :A ; :d "x1", "x2", "x3", "x4" . :a :d "2020-01-01"^^xsd:date .'
        schema = extract(body, ExtractionConfig(min_type_confidence=0.4))
        phi = schema.shape_for_class("http://x/A").property_shape_for("http://x/d")
        assert phi.value_types == (LiteralType(XSD.string),)


class TestExtractedSchemaQuality:
    def test_data_validates_against_extracted_shapes(self, small_dbpedia):
        """QSE guarantee: the graph conforms to its own extracted shapes."""
        report = validate(small_dbpedia.graph, small_dbpedia.shapes)
        assert report.conforms, [str(v) for v in report.violations[:3]]

    def test_extraction_is_deterministic(self, small_dbpedia):
        from repro.shacl import serialize_shacl

        a = serialize_shacl(extract_shapes(small_dbpedia.graph))
        b = serialize_shacl(extract_shapes(small_dbpedia.graph))
        assert a == b
