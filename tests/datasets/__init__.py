"""Test package."""
