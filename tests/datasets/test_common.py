"""Tests for the synthetic dataset generator machinery."""

from repro.datasets import (
    CATEGORIES,
    ClassSpec,
    DatasetSpec,
    MT_HETERO,
    MT_HOMO_L,
    PropertyTemplate,
    ST_LITERAL,
    ST_NON_LITERAL,
    generate,
)
from repro.namespaces import RDF_TYPE, XSD
from repro.rdf import IRI, Literal


def small_spec() -> DatasetSpec:
    return DatasetSpec(
        name="test",
        entity_namespace="http://t/",
        classes=[
            ClassSpec(
                iri="http://t/ns#A",
                weight=1.0,
                properties=(
                    PropertyTemplate("http://t/ns#name", ST_LITERAL, (XSD.string,)),
                    PropertyTemplate(
                        "http://t/ns#rel", ST_NON_LITERAL,
                        target_classes=("http://t/ns#B",),
                    ),
                    PropertyTemplate(
                        "http://t/ns#mix", MT_HETERO, (XSD.string,),
                        target_classes=("http://t/ns#B",),
                        literal_ratio=0.5, multiplicity=2,
                    ),
                ),
            ),
            ClassSpec(iri="http://t/ns#B", weight=0.5,
                      parents=("http://t/ns#Base",)),
            ClassSpec(iri="http://t/ns#Base", weight=0.0),
        ],
    )


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate(small_spec(), base_entities=30, seed=5)
        b = generate(small_spec(), base_entities=30, seed=5)
        assert a == b

    def test_different_seed_different_graph(self):
        a = generate(small_spec(), base_entities=30, seed=5)
        b = generate(small_spec(), base_entities=30, seed=6)
        assert a != b

    def test_scaling_increases_size(self):
        small = generate(small_spec(), base_entities=10, seed=5)
        large = generate(small_spec(), base_entities=50, seed=5)
        assert len(large) > len(small)


class TestStructure:
    def test_entities_typed_with_ancestors(self):
        graph = generate(small_spec(), base_entities=10, seed=5)
        b_instances = list(graph.instances_of(IRI("http://t/ns#B")))
        assert b_instances
        for entity in b_instances:
            assert IRI("http://t/ns#Base") in graph.types_of(entity)

    def test_subclass_triples_emitted(self):
        graph = generate(small_spec(), base_entities=10, seed=5)
        from repro.namespaces import RDFS

        assert graph.count(IRI("http://t/ns#B"), IRI(RDFS.subClassOf)) == 1

    def test_single_literal_values_are_strings(self):
        graph = generate(small_spec(), base_entities=20, seed=5)
        for t in graph.triples(p=IRI("http://t/ns#name")):
            assert isinstance(t.o, Literal)
            assert t.o.datatype == XSD.string

    def test_non_literal_targets_exist(self):
        graph = generate(small_spec(), base_entities=20, seed=5)
        for t in graph.triples(p=IRI("http://t/ns#rel")):
            assert IRI(RDF_TYPE) in set(x.p for x in graph.triples(s=t.o))

    def test_hetero_property_mixes_kinds(self):
        graph = generate(small_spec(), base_entities=60, seed=5)
        objects = [t.o for t in graph.triples(p=IRI("http://t/ns#mix"))]
        assert any(isinstance(o, Literal) for o in objects)
        assert any(isinstance(o, IRI) for o in objects)

    def test_zero_weight_classes_still_resolve(self):
        # weight 0.0 -> max(1, ...) == 1 direct instance: targets exist.
        graph = generate(small_spec(), base_entities=10, seed=5)
        assert IRI("http://t/Base_0") in graph.subject_set()


class TestSpecHelpers:
    def test_properties_by_category(self):
        spec = small_spec()
        assert len(spec.properties_by_category(ST_LITERAL)) == 1
        assert len(spec.properties_by_category(MT_HETERO)) == 1
        assert len(spec.properties_by_category(MT_HOMO_L)) == 0

    def test_class_spec_lookup(self):
        spec = small_spec()
        assert spec.class_spec("http://t/ns#A").weight == 1.0

    def test_categories_constant_complete(self):
        assert len(CATEGORIES) == 5
