"""Sanity tests for the concrete dataset specs (DBpedia, Bio2RDF, university)."""

from repro.datasets import (
    MT_HETERO,
    MT_HOMO_L,
    bio2rdf_spec,
    build_bio2rdf,
    build_dbpedia2020,
    build_dbpedia2022,
    dbpedia2020_spec,
    dbpedia2022_spec,
    university_graph,
    university_shapes,
)
from repro.shacl import shape_stats, validate
from repro.shapes import extract_shapes


class TestDbpedia2022:
    def test_generates_deterministically(self):
        assert build_dbpedia2022(50) == build_dbpedia2022(50)

    def test_has_all_five_categories(self):
        spec = dbpedia2022_spec()
        from repro.datasets import CATEGORIES

        for category in CATEGORIES:
            assert spec.properties_by_category(category), category

    def test_extracted_shapes_have_hetero(self):
        shapes = extract_shapes(build_dbpedia2022(60))
        stats = shape_stats(shapes)
        assert stats.multi_hetero > 0
        assert stats.multi_homo_literals > 0


class TestDbpedia2020:
    def test_no_hetero_or_mt_literal_templates(self):
        spec = dbpedia2020_spec()
        assert spec.properties_by_category(MT_HETERO) == []
        assert spec.properties_by_category(MT_HOMO_L) == []

    def test_extracted_shapes_match(self):
        shapes = extract_shapes(build_dbpedia2020(60))
        stats = shape_stats(shapes)
        assert stats.multi_hetero == 0

    def test_smaller_than_2022(self):
        assert len(build_dbpedia2020(50)) < len(build_dbpedia2022(50))


class TestBio2rdf:
    def test_domain_classes_present(self):
        graph = build_bio2rdf(40)
        class_names = {c.value.rsplit(":", 1)[-1] for c in graph.classes()}
        assert "ClinicalStudy" in class_names

    def test_few_hetero_properties(self):
        spec = bio2rdf_spec()
        assert 1 <= len(spec.properties_by_category(MT_HETERO)) <= 4


class TestUniversityFixture:
    def test_data_conforms_to_shapes(self):
        report = validate(university_graph(), university_shapes())
        assert report.conforms, [str(v) for v in report.violations]

    def test_figure2_entities_present(self):
        graph = university_graph()
        from repro.namespaces import UNI
        from repro.rdf import IRI

        bob_types = graph.types_of(IRI(UNI.bob))
        assert IRI(UNI.GraduateStudent) in bob_types

    def test_all_shape_categories_exercised(self):
        shapes = university_shapes()
        stats = shape_stats(shapes)
        assert stats.multi_hetero >= 1       # takesCourse
        assert stats.multi_homo_literals >= 1  # dob
        assert stats.single_non_literals >= 1  # worksFor
