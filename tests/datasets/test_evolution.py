"""Tests for evolving-graph snapshot generation (Section 5.4 inputs)."""

from repro.datasets import make_evolution_pair, make_snapshots, dbpedia2020_spec
from repro.namespaces import RDF_TYPE
from repro.rdf import IRI


def test_invariants_hold(small_dbpedia):
    pair = make_evolution_pair(small_dbpedia.graph)
    assert pair.check_invariants()


def test_added_fraction_approximate(small_dbpedia):
    base = small_dbpedia.graph
    pair = make_evolution_pair(base, add_fraction=0.05, delete_fraction=0.02)
    assert 0.02 <= len(pair.added) / len(base) <= 0.08
    assert len(pair.removed) > 0


def test_added_disjoint_from_old(small_dbpedia):
    pair = make_evolution_pair(small_dbpedia.graph)
    assert all(t not in pair.old for t in pair.added)


def test_removed_subset_of_old(small_dbpedia):
    pair = make_evolution_pair(small_dbpedia.graph)
    assert all(t in pair.old for t in pair.removed)


def test_type_triples_kept_in_old(small_dbpedia):
    pair = make_evolution_pair(small_dbpedia.graph)
    type_pred = IRI(RDF_TYPE)
    assert not any(t.p == type_pred for t in pair.added)


def test_deterministic(small_dbpedia):
    a = make_evolution_pair(small_dbpedia.graph, seed=3)
    b = make_evolution_pair(small_dbpedia.graph, seed=3)
    assert a.old == b.old and a.added == b.added and a.removed == b.removed


def test_make_snapshots_end_to_end():
    pair = make_snapshots(dbpedia2020_spec(), base_entities=30, seed=9)
    assert pair.check_invariants()
    assert len(pair.new) > 0
