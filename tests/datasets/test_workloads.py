"""Tests for the benchmark query workloads (Tables 6-7 inputs)."""

from repro.datasets import (
    bio2rdf_spec,
    bio2rdf_workload,
    build_workload,
    dbpedia2022_spec,
    dbpedia_workload,
)
from repro.query.sparql import parse_sparql


def test_dbpedia_workload_has_all_groups():
    workload = dbpedia_workload(dbpedia2022_spec())
    categories = {q.category for q in workload}
    assert categories == {
        "Single Type", "MT-Homo (L)", "MT-Homo (NL)", "MT-Hetero (L+NL)",
    }


def test_query_ids_sequential():
    workload = dbpedia_workload(dbpedia2022_spec())
    assert [q.qid for q in workload] == [f"Q{i + 1}" for i in range(len(workload))]


def test_no_duplicate_class_predicate_pairs():
    workload = dbpedia_workload(dbpedia2022_spec())
    pairs = [(q.class_iri, q.predicate) for q in workload]
    assert len(pairs) == len(set(pairs))


def test_sparql_texts_parse():
    for query in dbpedia_workload(dbpedia2022_spec()):
        parsed = parse_sparql(query.sparql)
        assert len(parsed.patterns) == 2


def test_hetero_queries_include_ancestor_classes():
    workload = dbpedia_workload(dbpedia2022_spec())
    hetero = [q for q in workload if q.category == "MT-Hetero (L+NL)"]
    classes = {q.class_iri for q in hetero}
    assert "http://dbpedia.org/ontology/Person" in classes  # via MusicalArtist


def test_bio2rdf_workload_sizes():
    workload = bio2rdf_workload(bio2rdf_spec())
    per_category = {}
    for q in workload:
        per_category[q.category] = per_category.get(q.category, 0) + 1
    assert per_category["Single Type"] == 3
    assert per_category["MT-Hetero (L+NL)"] >= 2


def test_group_sizes_capped_by_available_pairs():
    workload = build_workload(dbpedia2022_spec(), n_single=100, n_mt_homo_l=100,
                              n_mt_homo_nl=100, n_hetero=100)
    # Capped: can't exceed the number of distinct pairs in the spec.
    assert len(workload) < 100


def test_single_type_group_mixes_literal_and_non_literal():
    workload = dbpedia_workload(dbpedia2022_spec())
    single = [q for q in workload if q.category == "Single Type"]
    predicates = {q.predicate for q in single}
    assert any("birthPlace" in p or "artist" in p or "country" in p
               for p in predicates)
