"""Delta-scoped revalidation: standing report == full revalidation."""

from repro.rdf import parse_turtle
from repro.rdf.ntriples import parse_line
from repro.shacl import DeltaValidator, parse_shacl
from repro.shacl.validator import validate

SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :friend ; sh:nodeKind sh:IRI ; sh:class :Person ;
                sh:minCount 0 ] .
""")

PREFIX = "@prefix : <http://x/> .\n"
BASE = PREFIX + """
:a a :Person ; :name "A" ; :friend :b .
:b a :Person ; :name "B" .
:c a :Person ; :name "C" .
"""


def t(line: str):
    return parse_line(line)


def apply(graph, validator, added=(), removed=()):
    """Mutate the tracked graph, then inform the validator."""
    for triple in removed:
        graph.remove(triple)
    for triple in added:
        graph.add(triple)
    return validator.apply_delta(added=added, removed=removed)


class TestStandingReport:
    def test_initially_matches_full_validation(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        full = validate(graph, SHAPES)
        assert validator.conforms == full.conforms is True
        assert validator.focus_count == full.checked_entities == 3

    def test_violation_appears_and_clears(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        name_b = t('<http://x/b> <http://x/name> "B" .')
        apply(graph, validator, removed=(name_b,))
        assert not validator.conforms
        assert validator.conforms == validate(graph, SHAPES).conforms
        apply(graph, validator, added=(name_b,))
        assert validator.conforms

    def test_report_equals_fresh_rebuild_after_delta_sequence(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        history = [
            ((t("<http://x/d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> ."),), ()),
            ((t("<http://x/c> <http://x/friend> <http://x/d> ."),), ()),
            ((), (t('<http://x/a> <http://x/name> "A" .'),)),
            ((t('<http://x/d> <http://x/name> "D" .'),), ()),
        ]
        for added, removed in history:
            apply(graph, validator, added=added, removed=removed)
            fresh = DeltaValidator(SHAPES, graph)
            assert validator.snapshot() == fresh.snapshot()
            assert validator.conforms == validate(graph, SHAPES).conforms

    def test_untyped_entity_leaves_the_report(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        apply(graph, validator, removed=(
            t("<http://x/c> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> ."),
        ))
        assert validator.focus_count == 2
        assert validator.snapshot() == DeltaValidator(SHAPES, graph).snapshot()


class TestDeltaScoping:
    def test_sparse_delta_rechecks_strictly_fewer_nodes(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        checked = apply(graph, validator, removed=(
            t('<http://x/c> <http://x/name> "C" .'),
        ))
        # Only :c is affected — nobody references it.
        assert checked == 1
        assert checked < validator.focus_count

    def test_referencing_entities_are_rechecked(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        # De-typing :b invalidates :a's sh:class check on :friend.
        checked = apply(graph, validator, removed=(
            t("<http://x/b> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> ."),
        ))
        assert checked == 1  # :a (the referrer); :b leaves the report
        assert validator.focus_count == 2
        assert not validator.conforms
        assert validator.conforms == validate(graph, SHAPES).conforms

    def test_literal_change_fans_out_to_referrers(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        # A second name breaks :b's maxCount — and, because sh:class
        # validates nested conformance, :a's :friend check with it.
        checked = apply(graph, validator, added=(
            t('<http://x/b> <http://x/name> "B2" .'),
        ))
        assert checked == 2  # :b and its referrer :a
        assert not validator.conforms
        assert validator.snapshot() == DeltaValidator(SHAPES, graph).snapshot()

    def test_subclass_delta_triggers_full_rebuild(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        checked = apply(graph, validator, added=(
            t("<http://x/Admin> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/Person> ."),
        ))
        assert checked == validator.focus_count  # everything rechecked

    def test_recheck_counters_accumulate(self):
        graph = parse_turtle(BASE)
        validator = DeltaValidator(SHAPES, graph)
        initial = validator.total_rechecked
        assert initial == 3  # the constructor's full build
        apply(graph, validator, added=(
            t('<http://x/c> <http://x/name> "C2" .'),
        ))
        assert validator.last_rechecked == 1
        assert validator.total_rechecked == initial + 1
