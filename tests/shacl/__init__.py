"""Test package."""
