"""Round-trip tests for the SHACL serializer."""

from repro.namespaces import XSD
from repro.shacl import (
    ClassType,
    LiteralType,
    NodeShape,
    NodeShapeRef,
    PropertyShape,
    ShapeSchema,
    parse_shacl,
    serialize_shacl,
    shape_stats,
)
from repro.core import shape_schemas_equivalent
from repro.datasets import university_shapes


def build_schema() -> ShapeSchema:
    return ShapeSchema([
        NodeShape(
            name="http://x/shapes#A",
            target_class="http://x/A",
            property_shapes=[
                PropertyShape("http://x/p1", (LiteralType(XSD.string),), 1, 1),
                PropertyShape(
                    "http://x/p2",
                    (LiteralType(XSD.date), ClassType("http://x/B"),
                     NodeShapeRef("http://x/shapes#B")),
                    min_count=1,
                ),
            ],
        ),
        NodeShape(
            name="http://x/shapes#B",
            target_class="http://x/B",
            extends=("http://x/shapes#A",),
            property_shapes=[
                PropertyShape("http://x/p3", (LiteralType(XSD.integer),), 0, 3),
            ],
        ),
    ])


def test_round_trip_preserves_schema():
    schema = build_schema()
    again = parse_shacl(serialize_shacl(schema))
    assert shape_schemas_equivalent(schema, again)


def test_round_trip_preserves_stats():
    schema = build_schema()
    again = parse_shacl(serialize_shacl(schema))
    assert shape_stats(again) == shape_stats(schema)


def test_round_trip_university_fixture():
    schema = university_shapes()
    again = parse_shacl(serialize_shacl(schema))
    assert shape_schemas_equivalent(schema, again)


def test_serialized_text_is_valid_turtle_with_sh_terms():
    text = serialize_shacl(build_schema())
    assert "sh:NodeShape" in text
    assert "sh:minCount" in text
    assert "sh:or" in text


def test_empty_schema_serializes():
    assert parse_shacl(serialize_shacl(ShapeSchema())).names() == []


def test_mixin_shape_round_trip():
    schema = ShapeSchema([
        NodeShape(name="http://x/shapes#Base", target_class="http://x/Base"),
        NodeShape(name="http://x/shapes#Mix", extends=("http://x/shapes#Base",)),
    ])
    again = parse_shacl(serialize_shacl(schema))
    assert again["http://x/shapes#Mix"].extends == ("http://x/shapes#Base",)
