"""Unit tests for the SHACL document parser (Figure 4 constructs)."""

import pytest

from repro.errors import ShapeError
from repro.namespaces import XSD
from repro.shacl import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShapeRef,
    PropertyShapeKind,
    parse_shacl,
)

PREFIXES = """
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
"""


def parse(body: str):
    return parse_shacl(PREFIXES + body)


class TestNodeShapes:
    def test_figure_4a_person(self):
        schema = parse("""
        shapes:Person a sh:NodeShape ;
          sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                        sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
          sh:targetClass :Person .
        """)
        shape = schema["http://x/shapes#Person"]
        assert shape.target_class == "http://x/Person"
        phi = shape.property_shapes[0]
        assert phi.path == "http://x/name"
        assert phi.value_types == (LiteralType(XSD.string),)
        assert phi.cardinality() == (1, 1)

    def test_figure_4b_inheritance(self):
        schema = parse("""
        shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
          sh:property [ sh:path :name ; sh:datatype xsd:string ] .
        shapes:Student a sh:NodeShape ; sh:targetClass :Student ;
          sh:node shapes:Person ;
          sh:property [ sh:path :regNo ; sh:datatype xsd:string ] .
        """)
        student = schema["http://x/shapes#Student"]
        assert student.extends == ("http://x/shapes#Person",)

    def test_figure_4c_class_constraint(self):
        schema = parse("""
        shapes:Professor a sh:NodeShape ; sh:targetClass :Professor ;
          sh:property [ sh:path :worksFor ; sh:nodeKind sh:IRI ;
                        sh:class :Department ; sh:minCount 1 ; sh:maxCount 1 ] .
        """)
        phi = schema["http://x/shapes#Professor"].property_shapes[0]
        assert phi.value_types == (ClassType("http://x/Department"),)
        assert phi.kind() == PropertyShapeKind.SINGLE_NON_LITERAL

    def test_figure_4d_multi_literal_or(self):
        schema = parse("""
        shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
          sh:property [ sh:path :dob ;
            sh:or ( [ sh:nodeKind sh:Literal ; sh:datatype xsd:string ]
                    [ sh:nodeKind sh:Literal ; sh:datatype xsd:date ]
                    [ sh:nodeKind sh:Literal ; sh:datatype xsd:gYear ] ) ;
            sh:minCount 1 ] .
        """)
        phi = schema["http://x/shapes#Person"].property_shapes[0]
        assert phi.kind() == PropertyShapeKind.MULTI_HOMO_LITERAL
        assert set(phi.value_types) == {
            LiteralType(XSD.string), LiteralType(XSD.date), LiteralType(XSD.gYear),
        }
        assert phi.max_count == UNBOUNDED

    def test_figure_4f_heterogeneous(self):
        schema = parse("""
        shapes:GS a sh:NodeShape ; sh:targetClass :GS ;
          sh:property [ sh:path :takesCourse ;
            sh:or ( [ sh:NodeKind sh:IRI ; sh:class :Course ]
                    [ sh:NodeKind sh:Literal ; sh:datatype xsd:string ] ) ;
            sh:minCount 1 ] .
        """)
        phi = schema["http://x/shapes#GS"].property_shapes[0]
        assert phi.kind() == PropertyShapeKind.MULTI_HETERO

    def test_nested_shape_reference(self):
        schema = parse("""
        shapes:A a sh:NodeShape ; sh:targetClass :A .
        shapes:B a sh:NodeShape ; sh:targetClass :B ;
          sh:property [ sh:path :rel ; sh:node shapes:A ] .
        """)
        phi = schema["http://x/shapes#B"].property_shapes[0]
        assert phi.value_types == (NodeShapeRef("http://x/shapes#A"),)

    def test_literal_nodekind_without_datatype_defaults_to_string(self):
        schema = parse("""
        shapes:A a sh:NodeShape ; sh:targetClass :A ;
          sh:property [ sh:path :p ; sh:nodeKind sh:Literal ] .
        """)
        phi = schema["http://x/shapes#A"].property_shapes[0]
        assert phi.value_types == (LiteralType(XSD.string),)

    def test_property_shapes_sorted_by_path(self):
        schema = parse("""
        shapes:A a sh:NodeShape ; sh:targetClass :A ;
          sh:property [ sh:path :zz ; sh:datatype xsd:string ] ;
          sh:property [ sh:path :aa ; sh:datatype xsd:string ] .
        """)
        paths = [phi.path for phi in schema["http://x/shapes#A"].property_shapes]
        assert paths == sorted(paths)


class TestErrors:
    def test_missing_path_raises(self):
        with pytest.raises(ShapeError):
            parse("""
            shapes:A a sh:NodeShape ; sh:targetClass :A ;
              sh:property [ sh:datatype xsd:string ] .
            """)

    def test_iri_nodekind_without_class_raises(self):
        with pytest.raises(ShapeError):
            parse("""
            shapes:A a sh:NodeShape ; sh:targetClass :A ;
              sh:property [ sh:path :p ; sh:nodeKind sh:IRI ] .
            """)

    def test_no_constraint_raises(self):
        with pytest.raises(ShapeError):
            parse("""
            shapes:A a sh:NodeShape ; sh:targetClass :A ;
              sh:property [ sh:path :p ] .
            """)

    def test_non_integer_min_count_raises(self):
        with pytest.raises(ShapeError):
            parse("""
            shapes:A a sh:NodeShape ; sh:targetClass :A ;
              sh:property [ sh:path :p ; sh:datatype xsd:string ;
                            sh:minCount "lots" ] .
            """)

    def test_shape_without_target_or_parent_raises(self):
        with pytest.raises(ShapeError):
            parse("shapes:A a sh:NodeShape .")

    def test_empty_document_gives_empty_schema(self):
        assert len(parse("")) == 0
