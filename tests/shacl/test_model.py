"""Unit tests for the SHACL shape model (Definition 2.2)."""

import pytest

from repro.errors import ShapeError
from repro.namespaces import XSD
from repro.shacl import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShape,
    NodeShapeRef,
    PropertyShape,
    PropertyShapeKind,
    ShapeSchema,
    string_shape,
)

P = "http://x/p"


class TestValueTypes:
    def test_literal_type_is_literal(self):
        assert LiteralType(XSD.string).is_literal()

    def test_class_type_is_not_literal(self):
        assert not ClassType("http://x/C").is_literal()

    def test_shape_ref_is_not_literal(self):
        assert not NodeShapeRef("http://x/S").is_literal()

    def test_value_types_hashable(self):
        assert len({LiteralType(XSD.string), LiteralType(XSD.string)}) == 1


class TestPropertyShape:
    def test_requires_value_types(self):
        with pytest.raises(ShapeError):
            PropertyShape(path=P, value_types=())

    def test_rejects_negative_min(self):
        with pytest.raises(ShapeError):
            PropertyShape(P, (LiteralType(XSD.string),), min_count=-1)

    def test_rejects_max_below_min(self):
        with pytest.raises(ShapeError):
            PropertyShape(P, (LiteralType(XSD.string),), min_count=2, max_count=1)

    def test_unbounded_max_accepts_any_min(self):
        phi = PropertyShape(P, (LiteralType(XSD.string),), min_count=5)
        assert phi.max_count == UNBOUNDED

    @pytest.mark.parametrize(
        "types,expected",
        [
            ((LiteralType(XSD.string),), PropertyShapeKind.SINGLE_LITERAL),
            ((ClassType("http://x/C"),), PropertyShapeKind.SINGLE_NON_LITERAL),
            ((NodeShapeRef("http://x/S"),), PropertyShapeKind.SINGLE_NON_LITERAL),
            (
                (LiteralType(XSD.string), LiteralType(XSD.date)),
                PropertyShapeKind.MULTI_HOMO_LITERAL,
            ),
            (
                (ClassType("http://x/C"), ClassType("http://x/D")),
                PropertyShapeKind.MULTI_HOMO_NON_LITERAL,
            ),
            (
                (LiteralType(XSD.string), ClassType("http://x/C")),
                PropertyShapeKind.MULTI_HETERO,
            ),
            (
                (NodeShapeRef("http://x/S"), LiteralType(XSD.gYear)),
                PropertyShapeKind.MULTI_HETERO,
            ),
        ],
    )
    def test_taxonomy_kinds(self, types, expected):
        assert PropertyShape(P, types).kind() == expected

    def test_sole_literal_type(self):
        phi = PropertyShape(P, (LiteralType(XSD.string),))
        assert phi.sole_literal_type() == LiteralType(XSD.string)

    def test_sole_literal_type_none_for_multi(self):
        phi = PropertyShape(P, (LiteralType(XSD.string), LiteralType(XSD.date)))
        assert phi.sole_literal_type() is None

    def test_literal_and_non_literal_partitions(self):
        phi = PropertyShape(P, (LiteralType(XSD.string), ClassType("http://x/C")))
        assert phi.literal_types() == (LiteralType(XSD.string),)
        assert phi.non_literal_types() == (ClassType("http://x/C"),)

    def test_cardinality_helpers(self):
        phi = PropertyShape(P, (LiteralType(XSD.string),), min_count=1, max_count=1)
        assert phi.cardinality() == (1, 1)
        assert phi.is_mandatory()
        assert phi.is_functional()

    def test_unbounded_not_functional(self):
        phi = PropertyShape(P, (LiteralType(XSD.string),), min_count=0)
        assert not phi.is_functional()
        assert not phi.is_mandatory()

    def test_string_shape_helper(self):
        phi = string_shape(P)
        assert phi.kind() == PropertyShapeKind.SINGLE_LITERAL
        assert phi.cardinality() == (1, 1)


def shape(name, target=None, extends=(), props=()):
    return NodeShape(
        name=f"http://x/{name}",
        target_class=f"http://x/{target}" if target else None,
        extends=tuple(f"http://x/{e}" for e in extends),
        property_shapes=list(props),
    )


class TestNodeShape:
    def test_requires_target_or_parent(self):
        with pytest.raises(ShapeError):
            NodeShape(name="http://x/S")

    def test_mixin_with_parent_only(self):
        s = shape("S", extends=["T"])
        assert s.target_class is None

    def test_property_shape_for(self):
        phi = string_shape(P)
        s = shape("S", target="C", props=[phi])
        assert s.property_shape_for(P) is phi
        assert s.property_shape_for("http://x/other") is None


class TestShapeSchema:
    def test_add_and_lookup(self):
        schema = ShapeSchema([shape("S", target="C")])
        assert "http://x/S" in schema
        assert schema["http://x/S"].target_class == "http://x/C"

    def test_getitem_unknown_raises(self):
        with pytest.raises(ShapeError):
            ShapeSchema()["http://x/missing"]

    def test_get_returns_none(self):
        assert ShapeSchema().get("http://x/missing") is None

    def test_shape_for_class(self):
        schema = ShapeSchema([shape("S", target="C")])
        assert schema.shape_for_class("http://x/C").name == "http://x/S"
        assert schema.shape_for_class("http://x/D") is None

    def test_target_classes(self):
        schema = ShapeSchema([shape("S", target="C"), shape("M", extends=["S"])])
        assert schema.target_classes() == {"http://x/C": "http://x/S"}

    def test_ancestors_depth_first(self):
        schema = ShapeSchema([
            shape("A", target="CA"),
            shape("B", target="CB", extends=["A"]),
            shape("C", target="CC", extends=["B"]),
        ])
        assert schema.ancestors("http://x/C") == ["http://x/B", "http://x/A"]

    def test_ancestors_cycle_raises(self):
        schema = ShapeSchema([
            shape("A", target="CA", extends=["B"]),
            shape("B", target="CB", extends=["A"]),
        ])
        with pytest.raises(ShapeError):
            schema.ancestors("http://x/A")

    def test_ancestors_missing_parent_raises(self):
        schema = ShapeSchema([shape("A", target="CA", extends=["ZZ"])])
        with pytest.raises(ShapeError):
            schema.ancestors("http://x/A")

    def test_effective_property_shapes_inherits(self):
        parent_phi = string_shape("http://x/name")
        child_phi = string_shape("http://x/reg")
        schema = ShapeSchema([
            shape("A", target="CA", props=[parent_phi]),
            shape("B", target="CB", extends=["A"], props=[child_phi]),
        ])
        effective = schema.effective_property_shapes("http://x/B")
        assert {phi.path for phi in effective} == {"http://x/name", "http://x/reg"}

    def test_local_declaration_overrides_inherited(self):
        parent_phi = string_shape("http://x/name", min_count=1)
        override = string_shape("http://x/name", min_count=0)
        schema = ShapeSchema([
            shape("A", target="CA", props=[parent_phi]),
            shape("B", target="CB", extends=["A"], props=[override]),
        ])
        effective = schema.effective_property_shapes("http://x/B")
        assert len(effective) == 1
        assert effective[0].min_count == 0

    def test_validate_references_accepts_valid(self):
        schema = ShapeSchema([
            shape("A", target="CA"),
            shape("B", target="CB", extends=["A"],
                  props=[PropertyShape(P, (NodeShapeRef("http://x/A"),))]),
        ])
        schema.validate_references()

    def test_validate_references_dangling_ref(self):
        schema = ShapeSchema([
            shape("B", target="CB",
                  props=[PropertyShape(P, (NodeShapeRef("http://x/GONE"),))]),
        ])
        with pytest.raises(ShapeError):
            schema.validate_references()

    def test_validate_references_dangling_parent(self):
        schema = ShapeSchema([shape("B", target="CB", extends=["GONE"])])
        with pytest.raises(ShapeError):
            schema.validate_references()

    def test_all_property_shapes(self):
        schema = ShapeSchema([
            shape("A", target="CA", props=[string_shape("http://x/n")]),
            shape("B", target="CB", props=[string_shape("http://x/m")]),
        ])
        assert len(schema.all_property_shapes()) == 2

    def test_iteration_order_is_insertion_order(self):
        schema = ShapeSchema([shape("B", target="CB"), shape("A", target="CA")])
        assert schema.names() == ["http://x/B", "http://x/A"]
