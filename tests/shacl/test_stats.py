"""Tests for the Table 3 shape statistics."""

from repro.namespaces import XSD
from repro.shacl import (
    ClassType,
    LiteralType,
    NodeShape,
    PropertyShape,
    ShapeSchema,
    kind_histogram,
    classify_schema,
    is_multi_type,
    is_single_type,
    shape_stats,
    PropertyShapeKind,
)


def build_schema() -> ShapeSchema:
    lit = LiteralType(XSD.string)
    date = LiteralType(XSD.date)
    cls_a = ClassType("http://x/A")
    cls_b = ClassType("http://x/B")
    return ShapeSchema([
        NodeShape(
            name="http://x/shapes#S",
            target_class="http://x/S",
            property_shapes=[
                PropertyShape("http://x/p1", (lit,), 1, 1),          # single L
                PropertyShape("http://x/p2", (cls_a,), 1, 1),        # single NL
                PropertyShape("http://x/p3", (lit, date), 0),        # MT homo L
                PropertyShape("http://x/p4", (cls_a, cls_b), 0),     # MT homo NL
                PropertyShape("http://x/p5", (lit, cls_a), 0),       # hetero
            ],
        ),
    ])


def test_stats_counts_each_category():
    stats = shape_stats(build_schema())
    assert stats.n_node_shapes == 1
    assert stats.n_property_shapes == 5
    assert stats.n_single_type == 2
    assert stats.n_multi_type == 3
    assert stats.single_literals == 1
    assert stats.single_non_literals == 1
    assert stats.multi_homo_literals == 1
    assert stats.multi_homo_non_literals == 1
    assert stats.multi_hetero == 1


def test_as_row_matches_table3_columns():
    row = shape_stats(build_schema()).as_row()
    assert row["# of NS"] == 1
    assert row["# of PS"] == 5
    assert row["Multi Type Hetero PS (L & NL)"] == 1


def test_kind_histogram():
    histogram = kind_histogram(build_schema())
    assert histogram[PropertyShapeKind.MULTI_HETERO] == 1
    assert sum(histogram.values()) == 5


def test_classify_schema_entries():
    entries = classify_schema(build_schema())
    assert len(entries) == 5
    assert {e.path for e in entries} == {f"http://x/p{i}" for i in range(1, 6)}


def test_single_multi_predicates():
    assert is_single_type(PropertyShapeKind.SINGLE_LITERAL)
    assert is_single_type(PropertyShapeKind.SINGLE_NON_LITERAL)
    assert is_multi_type(PropertyShapeKind.MULTI_HETERO)
    assert not is_multi_type(PropertyShapeKind.SINGLE_LITERAL)


def test_empty_schema_stats():
    stats = shape_stats(ShapeSchema())
    assert stats.n_node_shapes == 0
    assert stats.n_property_shapes == 0
