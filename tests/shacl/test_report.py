"""Tests for SHACL validation reports as RDF."""

import pytest

from repro.namespaces import SH
from repro.rdf import Graph, IRI, parse_turtle
from repro.shacl import (
    graph_to_report,
    parse_shacl,
    report_to_graph,
    validate,
)

SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] .
""")


def violating_report():
    data = parse_turtle("@prefix : <http://x/> . :p a :Person .")
    return validate(data, SHAPES)


def conforming_report():
    data = parse_turtle('@prefix : <http://x/> . :p a :Person ; :name "P" .')
    return validate(data, SHAPES)


class TestReportToGraph:
    def test_conforming_report_structure(self):
        graph = report_to_graph(conforming_report())
        assert graph.count(p=IRI(SH.conforms)) == 1
        assert graph.count(p=IRI(SH.result)) == 0

    def test_violating_report_structure(self):
        graph = report_to_graph(violating_report())
        assert graph.count(p=IRI(SH.result)) == 1
        assert graph.count(p=IRI(SH.resultMessage)) == 1
        assert graph.count(p=IRI(SH.focusNode)) == 1
        assert graph.count(p=IRI(SH.resultPath)) == 1

    def test_severity_is_violation(self):
        graph = report_to_graph(violating_report())
        assert graph.count(p=IRI(SH.resultSeverity), o=IRI(SH.Violation)) == 1


class TestRoundTrip:
    def test_conforms_flag_round_trips(self):
        assert graph_to_report(report_to_graph(conforming_report())).conforms
        assert not graph_to_report(report_to_graph(violating_report())).conforms

    def test_violation_details_round_trip(self):
        original = violating_report()
        again = graph_to_report(report_to_graph(original))
        assert len(again.violations) == len(original.violations)
        assert again.violations[0].focus == original.violations[0].focus
        assert again.violations[0].path == original.violations[0].path
        assert again.violations[0].message == original.violations[0].message

    def test_missing_report_rejected(self):
        with pytest.raises(ValueError):
            graph_to_report(Graph())
