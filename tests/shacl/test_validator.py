"""Unit tests for the SHACL validator (Definition 2.3 semantics)."""

import pytest

from repro.rdf import parse_turtle
from repro.shacl import ShaclValidator, parse_shacl, validate

SHAPES = """
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .

shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] .

shapes:Student a sh:NodeShape ; sh:targetClass :Student ;
  sh:node shapes:Person ;
  sh:property [ sh:path :regNo ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :advisedBy ; sh:nodeKind sh:IRI ;
                sh:class :Person ; sh:minCount 0 ] .

shapes:Course a sh:NodeShape ; sh:targetClass :Course ;
  sh:property [ sh:path :credits ; sh:datatype xsd:integer ;
                sh:minCount 1 ; sh:maxCount 2 ] .

shapes:Enrolment a sh:NodeShape ; sh:targetClass :Enrolment ;
  sh:property [ sh:path :inCourse ; sh:node shapes:Course ;
                sh:minCount 1 ; sh:maxCount 1 ] .
"""

DATA_PREFIX = "@prefix : <http://x/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"


@pytest.fixture(scope="module")
def schema():
    return parse_shacl(SHAPES)


def check(schema, data_body: str):
    return validate(parse_turtle(DATA_PREFIX + data_body), schema)


class TestLiteralConstraints:
    def test_conforming_entity(self, schema):
        report = check(schema, ':p a :Person ; :name "Ann" .')
        assert report.conforms
        assert report.checked_entities == 1

    def test_missing_mandatory_property(self, schema):
        report = check(schema, ":p a :Person .")
        assert not report.conforms
        assert any("cardinality 0" in str(v) for v in report.violations)

    def test_too_many_values(self, schema):
        report = check(schema, ':p a :Person ; :name "Ann", "Bea" .')
        assert not report.conforms

    def test_wrong_datatype(self, schema):
        report = check(schema, ':p a :Person ; :name "5"^^xsd:integer .')
        assert not report.conforms

    def test_language_tag_violates_string_datatype(self, schema):
        report = check(schema, ':p a :Person ; :name "Ann"@en .')
        assert not report.conforms

    def test_iri_where_literal_expected(self, schema):
        report = check(schema, ":p a :Person ; :name :notALiteral .")
        assert not report.conforms

    def test_cardinality_range(self, schema):
        assert check(schema, ":c a :Course ; :credits 5 .").conforms
        assert check(schema, ":c a :Course ; :credits 5, 7 .").conforms
        assert not check(schema, ":c a :Course ; :credits 5, 7, 9 .").conforms


class TestClassConstraints:
    def test_object_of_right_class(self, schema):
        report = check(schema, """
        :s a :Student ; :name "S" ; :regNo "1" ; :advisedBy :a .
        :a a :Person ; :name "A" .
        """)
        assert report.conforms

    def test_object_of_wrong_class(self, schema):
        report = check(schema, """
        :s a :Student ; :name "S" ; :regNo "1" ; :advisedBy :c .
        :c a :Course ; :credits 3 .
        """)
        assert not report.conforms

    def test_object_must_also_conform_to_class_shape(self, schema):
        # :a is a Person but violates the Person shape (no name).
        report = check(schema, """
        :s a :Student ; :name "S" ; :regNo "1" ; :advisedBy :a .
        :a a :Person .
        """)
        assert not report.conforms

    def test_untyped_object_fails_class_constraint(self, schema):
        report = check(schema, """
        :s a :Student ; :name "S" ; :regNo "1" ; :advisedBy :nobody .
        """)
        assert not report.conforms


class TestShapeRefConstraints:
    def test_node_ref_conforming(self, schema):
        report = check(schema, """
        :e a :Enrolment ; :inCourse :c .
        :c a :Course ; :credits 3 .
        """)
        assert report.conforms

    def test_node_ref_violating_target_shape(self, schema):
        report = check(schema, """
        :e a :Enrolment ; :inCourse :c .
        :c a :Course .
        """)
        assert not report.conforms


class TestInheritance:
    def test_child_checks_inherited_property(self, schema):
        report = check(schema, ':s a :Student ; :regNo "1" .')  # missing name
        assert not report.conforms

    def test_child_conforms_with_all_properties(self, schema):
        report = check(schema, ':s a :Student ; :regNo "1" ; :name "S" .')
        assert report.conforms


class TestRecursion:
    def test_cyclic_shape_references_terminate(self):
        cyclic = parse_shacl("""
        @prefix sh: <http://www.w3.org/ns/shacl#> .
        @prefix : <http://x/> .
        @prefix shapes: <http://x/shapes#> .
        shapes:A a sh:NodeShape ; sh:targetClass :A ;
          sh:property [ sh:path :next ; sh:node shapes:A ; sh:minCount 0 ] .
        """)
        data = parse_turtle("""
        @prefix : <http://x/> .
        :a1 a :A ; :next :a2 . :a2 a :A ; :next :a1 .
        """)
        assert validate(data, cyclic).conforms


class TestEntityApi:
    def test_entity_conforms(self, schema):
        from repro.rdf import IRI

        graph = parse_turtle(DATA_PREFIX + ':p a :Person ; :name "Ann" .')
        validator = ShaclValidator(schema)
        assert validator.entity_conforms(graph, IRI("http://x/p"), "http://x/shapes#Person")

    def test_max_violations_bounds_report(self, schema):
        body = "\n".join(f":p{i} a :Person ." for i in range(50))
        graph = parse_turtle(DATA_PREFIX + body)
        report = ShaclValidator(schema, max_violations=5).validate(graph)
        assert not report.conforms
        assert len(report.violations) <= 5

    def test_violation_str_contains_focus_and_path(self, schema):
        report = check(schema, ":p a :Person .")
        text = str(report.violations[0])
        assert "http://x/p" in text and "name" in text

    def test_empty_graph_conforms(self, schema):
        report = check(schema, "")
        assert report.conforms
        assert report.checked_entities == 0


class TestNestedCheckReachesReport:
    """A violation found while an entity is checked as a *referenced value*
    must still fail the full-graph report (found by the fuzzer: the memo
    returned the cached verdict without marking the caller's report)."""

    NESTED_SHAPES = """
    @prefix sh: <http://www.w3.org/ns/shacl#> .
    @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
    @prefix : <http://x/> .
    @prefix shapes: <http://x/shapes#> .

    shapes:Dept a sh:NodeShape ; sh:targetClass :Dept ;
      sh:property [ sh:path :head ; sh:node shapes:Person ;
                    sh:nodeKind sh:IRI ; sh:minCount 0 ] .

    shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
      sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                    sh:datatype xsd:string ; sh:minCount 1 ] .
    """

    def test_nested_failure_fails_full_validation(self):
        # :d is checked first (Dept precedes Person in target order) and
        # pulls :p through the shape-ref; :p lacks the mandatory :name.
        schema = parse_shacl(self.NESTED_SHAPES)
        graph = parse_turtle(DATA_PREFIX + ":d a :Dept ; :head :p . :p a :Person .")
        report = validate(graph, schema)
        assert not report.conforms
        assert any("http://x/p" in v.focus for v in report.violations)

    def test_nested_conforming_reference_still_passes(self):
        schema = parse_shacl(self.NESTED_SHAPES)
        graph = parse_turtle(
            DATA_PREFIX + ':d a :Dept ; :head :p . :p a :Person ; :name "Ann" .'
        )
        assert validate(graph, schema).conforms
