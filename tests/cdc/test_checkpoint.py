"""Checkpoint/resume: watermark protocol and state recovery."""

import json

import pytest

from repro.cdc import (
    CDCConfig,
    CDCPipeline,
    Delta,
    has_checkpoint,
    load_checkpoint,
    replay_deltas,
    save_checkpoint,
)
from repro.errors import ChangefeedError
from repro.pg import PropertyGraphStore
from repro.rdf import parse_turtle
from repro.rdf.ntriples import parse_line
from repro.shacl import DeltaValidator, parse_shacl
from repro.core import S3PG

SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :friend ; sh:nodeKind sh:IRI ; sh:class :Person ;
                sh:minCount 0 ] .
""")

BASE = '@prefix : <http://x/> .\n:a a :Person ; :name "A" .'

ADD_B_TYPE = parse_line("<http://x/b> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .")
ADD_B_NAME = parse_line('<http://x/b> <http://x/name> "B" .')
ADD_AB_EDGE = parse_line("<http://x/a> <http://x/friend> <http://x/b> .")


def make_pipeline(**kwargs):
    graph = parse_turtle(BASE)
    result = S3PG().transform(graph, SHAPES)
    return CDCPipeline(
        result.transformed,
        graph,
        store=PropertyGraphStore(result.graph),
        validator=DeltaValidator(SHAPES, graph),
        config=CDCConfig(max_linger_s=0.0),
        **kwargs,
    )


class TestSaveLoad:
    def test_roundtrip_restores_state(self, tmp_path):
        pipeline = make_pipeline()
        replay_deltas(pipeline, [
            Delta(1, added=(ADD_B_TYPE, ADD_B_NAME)),
            Delta(2, added=(ADD_AB_EDGE,)),
        ])
        save_checkpoint(tmp_path, pipeline)
        assert has_checkpoint(tmp_path)

        state = load_checkpoint(tmp_path)
        assert state.watermark == 2
        assert state.transformed.graph.structurally_equal(
            pipeline.transformed.graph
        )
        assert set(state.source_graph) == set(pipeline.graph)
        assert state.meta["conforms"] is True

    def test_resumed_pipeline_continues_the_stream(self, tmp_path):
        first = make_pipeline()
        replay_deltas(first, [Delta(1, added=(ADD_B_TYPE, ADD_B_NAME))])
        save_checkpoint(tmp_path, first)

        state = load_checkpoint(tmp_path)
        resumed = CDCPipeline(
            state.transformed,
            state.source_graph,
            store=PropertyGraphStore(state.transformed.graph),
            validator=DeltaValidator(SHAPES, state.source_graph),
            config=CDCConfig(max_linger_s=0.0),
            watermark=state.watermark,
        )
        stats = replay_deltas(resumed, [
            Delta(1, added=(ADD_B_TYPE,)),  # below watermark -> skipped
            Delta(2, added=(ADD_AB_EDGE,)),
        ])
        assert stats.deltas_skipped == 1
        assert stats.deltas_applied == 1

        # End state equals one uninterrupted run over the same history.
        uninterrupted = make_pipeline()
        replay_deltas(uninterrupted, [
            Delta(1, added=(ADD_B_TYPE, ADD_B_NAME)),
            Delta(2, added=(ADD_AB_EDGE,)),
        ])
        assert resumed.transformed.graph.structurally_equal(
            uninterrupted.transformed.graph
        )
        assert resumed.store.catalog_discrepancies() == []

    def test_periodic_checkpointing(self, tmp_path):
        pipeline = make_pipeline()
        pipeline.checkpoint_dir = tmp_path
        pipeline.config.checkpoint_every = 1
        stats = replay_deltas(pipeline, [
            Delta(1, added=(ADD_B_TYPE,)),
            Delta(2, added=(ADD_B_NAME,)),
        ])
        # One checkpoint per applied delta plus the final one.
        assert stats.checkpoints >= 2
        assert load_checkpoint(tmp_path).watermark == 2


class TestProtocol:
    def test_missing_checkpoint_raises(self, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(ChangefeedError):
            load_checkpoint(tmp_path)

    def test_corrupt_watermark_raises(self, tmp_path):
        (tmp_path / "watermark.json").write_text("nope", encoding="utf-8")
        with pytest.raises(ChangefeedError):
            load_checkpoint(tmp_path)

    def test_watermark_written_last(self, tmp_path):
        pipeline = make_pipeline()
        replay_deltas(pipeline, [Delta(1, added=(ADD_B_TYPE,))])
        save_checkpoint(tmp_path, pipeline)
        meta = json.loads((tmp_path / "watermark.json").read_text())
        assert meta["watermark"] == 1
        # Every artifact the watermark vouches for exists.
        for artifact in ("nodes.csv", "edges.csv", "mapping.json",
                         "source.nt", "report.json"):
            assert (tmp_path / artifact).is_file(), artifact
