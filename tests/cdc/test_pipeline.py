"""The CDC pipeline: batching, effectivity, retry/quarantine, metrics."""

import asyncio
import json

import pytest

from repro.cdc import (
    CDCConfig,
    CDCPipeline,
    Delta,
    JsonlChangefeed,
    MemoryChangefeed,
    replay_deltas,
    write_delta_log,
)
from repro.core import S3PG, TransformOptions
from repro.obs import get_metrics
from repro.pg import PropertyGraphStore
from repro.rdf import parse_turtle
from repro.rdf.ntriples import parse_line
from repro.shacl import DeltaValidator, parse_shacl
from repro.shacl.validator import validate as shacl_validate

SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :friend ; sh:nodeKind sh:IRI ; sh:class :Person ;
                sh:minCount 0 ] .
""")

PREFIX = "@prefix : <http://x/> .\n"
BASE = PREFIX + ':a a :Person ; :name "A" ; :friend :b .\n:b a :Person ; :name "B" .'


def t(line: str):
    return parse_line(line)


ADD_C_TYPE = t("<http://x/c> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .")
ADD_C_NAME = t('<http://x/c> <http://x/name> "C" .')
ADD_BC_EDGE = t("<http://x/b> <http://x/friend> <http://x/c> .")
REMOVE_AB_EDGE = t("<http://x/a> <http://x/friend> <http://x/b> .")


def make_pipeline(validate=True, options=None, **kwargs):
    graph = parse_turtle(BASE)
    result = S3PG(options) if options else S3PG()
    result = result.transform(graph, SHAPES)
    store = PropertyGraphStore(result.graph)
    validator = DeltaValidator(SHAPES, graph) if validate else None
    config = kwargs.pop("config", CDCConfig(max_linger_s=0.0))
    pipeline = CDCPipeline(
        result.transformed, graph, store=store, validator=validator,
        config=config, **kwargs,
    )
    return pipeline, result, graph


class TestApply:
    def test_stream_matches_from_scratch(self):
        pipeline, result, graph = make_pipeline()
        stats = replay_deltas(pipeline, [
            Delta(1, added=(ADD_C_TYPE, ADD_C_NAME)),
            Delta(2, added=(ADD_BC_EDGE,), removed=(REMOVE_AB_EDGE,)),
        ])
        assert stats.deltas_applied == 2
        from_scratch = S3PG().transform(graph.copy(), SHAPES)
        assert result.graph.structurally_equal(from_scratch.graph)
        assert pipeline.store.catalog_discrepancies() == []

    def test_watermark_advances_and_skips_replayed(self):
        pipeline, _, _ = make_pipeline()
        replay_deltas(pipeline, [Delta(1, added=(ADD_C_TYPE,))])
        assert pipeline.watermark == 1
        stats = replay_deltas(pipeline, [
            Delta(1, added=(ADD_C_TYPE,)),  # duplicate of an applied seq
            Delta(2, added=(ADD_C_NAME,)),
        ])
        assert stats.deltas_skipped == 1
        assert pipeline.watermark == 2

    def test_noneffective_ops_are_noops(self):
        pipeline, result, _ = make_pipeline()
        before = result.graph.canonical_form()
        stats = replay_deltas(pipeline, [
            # Re-add of a present triple + remove of an absent one.
            Delta(1, added=(t('<http://x/a> <http://x/name> "A" .'),),
                  removed=(ADD_C_NAME,)),
        ])
        assert stats.deltas_applied == 1
        assert stats.triples_added == 0 and stats.triples_removed == 0
        assert result.graph.canonical_form() == before

    def test_standing_report_tracks_violations(self):
        pipeline, _, graph = make_pipeline()
        assert pipeline.validator.conforms
        replay_deltas(pipeline, [
            Delta(1, removed=(t('<http://x/b> <http://x/name> "B" .'),)),
        ])
        assert not pipeline.validator.conforms
        full = shacl_validate(graph, SHAPES)
        assert pipeline.validator.conforms == full.conforms
        fresh = DeltaValidator(SHAPES, graph)
        assert pipeline.validator.snapshot() == fresh.snapshot()


class TestBatching:
    def test_max_batch_size_splits_batches(self):
        pipeline, _, _ = make_pipeline(
            config=CDCConfig(max_batch_size=2, max_linger_s=0.0)
        )
        stats = replay_deltas(pipeline, [Delta(i) for i in range(1, 6)])
        assert stats.deltas_applied == 5
        assert stats.batches == 3

    def test_linger_merges_trickled_deltas(self):
        pipeline, _, _ = make_pipeline(
            config=CDCConfig(max_batch_size=64, max_linger_s=5.0)
        )

        async def scenario():
            feed = MemoryChangefeed()

            async def producer():
                for i in range(1, 4):
                    await feed.put(Delta(i))
                    await asyncio.sleep(0.01)
                feed.close()

            _, stats = await asyncio.gather(producer(), pipeline.run(feed))
            return stats

        stats = asyncio.run(scenario())
        assert stats.deltas_applied == 3
        assert stats.batches == 1  # linger absorbed the trickle

    def test_bounded_queue_counts_backpressure(self):
        pipeline, _, _ = make_pipeline(
            config=CDCConfig(max_batch_size=1, max_linger_s=0.0, queue_maxsize=1)
        )
        stats = replay_deltas(pipeline, [Delta(i) for i in range(1, 8)])
        assert stats.deltas_applied == 7
        assert stats.backpressure_waits > 0


class TestQuarantine:
    def _poison_pipeline(self, tmp_path, max_retries=0):
        options = TransformOptions(parsimonious=False, on_unknown="error")
        return make_pipeline(
            validate=False,
            options=options,
            quarantine_path=tmp_path / "dead.jsonl",
            config=CDCConfig(
                max_linger_s=0.0, max_retries=max_retries, retry_base_s=0.001
            ),
        )

    def test_poison_delta_is_quarantined_not_fatal(self, tmp_path):
        pipeline, result, graph = self._poison_pipeline(tmp_path)
        poison = Delta(1, added=(t("<http://x/a> <http://x/mystery> <http://x/b> ."),))
        stats = replay_deltas(pipeline, [poison, Delta(2, added=(ADD_C_TYPE,))])
        assert stats.deltas_quarantined == 1
        assert stats.deltas_applied == 1  # the stream continued
        records = [
            json.loads(line)
            for line in (tmp_path / "dead.jsonl").read_text().splitlines()
        ]
        assert records[0]["seq"] == 1
        assert "mystery" in records[0]["payload"]
        # Nothing from the poison delta leaked into the graph or source.
        from_scratch = S3PG(
            TransformOptions(parsimonious=False, on_unknown="error")
        ).transform(graph.copy(), SHAPES)
        assert result.graph.structurally_equal(from_scratch.graph)

    def test_retries_before_quarantine(self, tmp_path):
        pipeline, _, _ = self._poison_pipeline(tmp_path, max_retries=2)
        poison = Delta(1, added=(t("<http://x/a> <http://x/mystery> <http://x/b> ."),))
        stats = replay_deltas(pipeline, [poison])
        assert stats.retries == 2
        assert stats.deltas_quarantined == 1
        record = json.loads((tmp_path / "dead.jsonl").read_text())
        assert record["attempts"] == 3

    def test_undecodable_line_is_quarantined(self, tmp_path):
        log = tmp_path / "deltas.jsonl"
        write_delta_log([Delta(1, added=(ADD_C_TYPE,))], log)
        with open(log, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        pipeline, _, _ = make_pipeline(
            validate=False, quarantine_path=tmp_path / "dead.jsonl"
        )
        stats = asyncio.run(pipeline.run(JsonlChangefeed(log)))
        assert stats.deltas_applied == 1
        assert stats.deltas_quarantined == 1


class TestMetrics:
    def test_cdc_metrics_populated(self):
        get_metrics().reset()
        pipeline, _, _ = make_pipeline()
        replay_deltas(pipeline, [Delta(1, added=(ADD_C_TYPE, ADD_C_NAME))])
        snapshot = get_metrics().snapshot()
        latency = snapshot["repro_cdc_delta_latency_seconds"]["series"][0]
        assert latency["count"] == 1
        deltas = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snapshot["repro_cdc_deltas_total"]["series"]
        }
        assert deltas[(("status", "applied"),)] == 1
        assert snapshot["repro_cdc_staleness_seconds"]["series"][0]["value"] > 0
        assert (
            snapshot["repro_cdc_revalidated_focus_total"]["series"][0]["value"]
            > 0
        )
        get_metrics().reset()
