"""Tests for the repro.cdc incremental service."""
