"""Changefeed sources: the JSONL codec, in-memory queue, and log tailing."""

import asyncio

import pytest

from repro.cdc import (
    BadDelta,
    Delta,
    JsonlChangefeed,
    MemoryChangefeed,
    append_delta,
    delta_from_json,
    delta_to_json,
    read_delta_log,
    write_delta_log,
)
from repro.errors import ChangefeedError
from repro.rdf.ntriples import parse_line

T1 = parse_line('<http://x/a> <http://x/p> "v" .')
T2 = parse_line("<http://x/a> <http://x/q> <http://x/b> .")


class TestCodec:
    def test_roundtrip(self):
        delta = Delta(seq=7, added=(T1,), removed=(T2,))
        back = delta_from_json(delta_to_json(delta))
        assert back == delta

    def test_unicode_survives(self):
        triple = parse_line('<http://x/a> <http://x/p> "gr\\u00fc\\u00df" .')
        back = delta_from_json(delta_to_json(Delta(1, added=(triple,))))
        assert back.added == (triple,)

    def test_rejects_non_json(self):
        with pytest.raises(ChangefeedError):
            delta_from_json("not json")

    def test_rejects_missing_seq(self):
        with pytest.raises(ChangefeedError):
            delta_from_json('{"add": []}')

    def test_rejects_bad_statement(self):
        with pytest.raises(ChangefeedError):
            delta_from_json('{"seq": 1, "add": ["<oops"]}')

    def test_len_counts_both_sides(self):
        assert len(Delta(1, added=(T1,), removed=(T2,))) == 2


class TestDeltaLog:
    def test_write_read_roundtrip(self, tmp_path):
        log = tmp_path / "deltas.jsonl"
        deltas = [Delta(1, added=(T1,)), Delta(2, removed=(T1,), added=(T2,))]
        assert write_delta_log(deltas, log) == 2
        assert read_delta_log(log) == deltas

    def test_append(self, tmp_path):
        log = tmp_path / "deltas.jsonl"
        append_delta(log, Delta(1, added=(T1,)))
        append_delta(log, Delta(2, added=(T2,)))
        assert [d.seq for d in read_delta_log(log)] == [1, 2]

    def test_read_is_strict(self, tmp_path):
        log = tmp_path / "deltas.jsonl"
        log.write_text('{"seq": 1, "add": []}\ngarbage\n', encoding="utf-8")
        with pytest.raises(ChangefeedError):
            read_delta_log(log)


async def _collect(feed):
    return [item async for item in feed]


class TestMemoryChangefeed:
    def test_fifo_until_closed(self):
        async def scenario():
            feed = MemoryChangefeed()
            await feed.put(Delta(1))
            await feed.put(Delta(2))
            feed.close()
            return await _collect(feed)

        items = asyncio.run(scenario())
        assert [d.seq for d in items] == [1, 2]

    def test_put_after_close_raises(self):
        async def scenario():
            feed = MemoryChangefeed()
            feed.close()
            with pytest.raises(ChangefeedError):
                await feed.put(Delta(1))

        asyncio.run(scenario())

    def test_bounded_put_backpressures(self):
        async def scenario():
            feed = MemoryChangefeed(maxsize=2)
            await feed.put(Delta(1))
            await feed.put(Delta(2))

            async def producer():
                await feed.put(Delta(3))
                feed.close()

            task = asyncio.create_task(producer())
            await asyncio.sleep(0)
            assert feed.backpressure_waits == 1  # producer is blocked
            items = await _collect(feed)
            await task
            return items

        items = asyncio.run(scenario())
        assert [d.seq for d in items] == [1, 2, 3]


class TestJsonlChangefeed:
    def test_replay_to_eof(self, tmp_path):
        log = tmp_path / "deltas.jsonl"
        write_delta_log([Delta(1, added=(T1,)), Delta(2)], log)
        items = asyncio.run(_collect(JsonlChangefeed(log)))
        assert [d.seq for d in items] == [1, 2]

    def test_start_after_skips_watermarked(self, tmp_path):
        log = tmp_path / "deltas.jsonl"
        write_delta_log([Delta(1), Delta(2), Delta(3)], log)
        items = asyncio.run(_collect(JsonlChangefeed(log, start_after=2)))
        assert [d.seq for d in items] == [3]

    def test_bad_line_yields_baddelta(self, tmp_path):
        log = tmp_path / "deltas.jsonl"
        log.write_text(
            delta_to_json(Delta(1)) + "\n" + "garbage\n"
            + delta_to_json(Delta(2)) + "\n",
            encoding="utf-8",
        )
        items = asyncio.run(_collect(JsonlChangefeed(log)))
        assert [type(i).__name__ for i in items] == [
            "Delta", "BadDelta", "Delta"
        ]
        assert items[1].line_number == 2

    def test_follow_sees_appended_records(self, tmp_path):
        log = tmp_path / "deltas.jsonl"
        write_delta_log([Delta(1)], log)

        async def scenario():
            feed = JsonlChangefeed(log, follow=True, poll_interval=0.01)
            seen = []

            async def consume():
                async for item in feed:
                    seen.append(item)
                    if len(seen) == 2:
                        feed.stop()

            task = asyncio.create_task(consume())
            await asyncio.sleep(0.05)
            append_delta(log, Delta(2, added=(T2,)))
            await asyncio.wait_for(task, timeout=5)
            return seen

        seen = asyncio.run(scenario())
        assert [d.seq for d in seen] == [1, 2]
