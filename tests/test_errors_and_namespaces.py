"""Tests for the exception hierarchy and namespace utilities."""

import pytest

from repro.errors import (
    GraphError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    ShapeError,
    TermError,
    TransformError,
    TranslationError,
    ValidationError,
)
from repro.namespaces import (
    EX,
    Namespace,
    RDF,
    SH,
    WELL_KNOWN_PREFIXES,
    XSD,
    local_name,
    split_iri,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [ParseError, TermError, GraphError, ShapeError, SchemaError,
         ValidationError, TransformError, QueryError, TranslationError],
    )
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_parse_error_location_formatting(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err) and "column 7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_location(self):
        err = ParseError("bad token")
        assert str(err) == "bad token"
        assert err.line is None

    def test_parse_error_line_only(self):
        assert "line 5" in str(ParseError("x", line=5))


class TestNamespace:
    def test_attribute_access(self):
        assert XSD.string == "http://www.w3.org/2001/XMLSchema#string"

    def test_item_access(self):
        assert SH["class"] == "http://www.w3.org/ns/shacl#class"

    def test_term_method(self):
        assert EX.term("a") == "http://example.org/a"

    def test_contains(self):
        assert XSD.string in XSD
        assert "http://other/x" not in XSD

    def test_local_name_extraction(self):
        assert XSD.local_name(XSD.string) == "string"
        with pytest.raises(ValueError):
            XSD.local_name("http://other/x")

    def test_private_attribute_raises(self):
        with pytest.raises(AttributeError):
            XSD._private

    def test_equality_and_hash(self):
        assert Namespace("http://a/") == Namespace("http://a/")
        assert len({Namespace("http://a/"), Namespace("http://a/")}) == 1

    def test_well_known_prefixes_cover_core_vocabularies(self):
        for prefix in ("rdf", "rdfs", "xsd", "sh"):
            assert prefix in WELL_KNOWN_PREFIXES


class TestIriSplitting:
    @pytest.mark.parametrize(
        "iri,expected",
        [
            ("http://x/ns#Person", ("http://x/ns#", "Person")),
            ("http://x/ns/Person", ("http://x/ns/", "Person")),
            ("urn:isbn:12345", ("urn:isbn:", "12345")),
            ("noseparator", ("", "noseparator")),
        ],
    )
    def test_split_iri(self, iri, expected):
        assert split_iri(iri) == expected

    def test_local_name(self):
        assert local_name(RDF.type) == "type"
