"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import transform
from repro.datasets import university_graph, university_shapes
from repro.eval import load_dataset


@pytest.fixture(scope="session")
def uni_graph():
    """The Figure 2a university RDF graph."""
    return university_graph()


@pytest.fixture(scope="session")
def uni_shapes():
    """The Figure 2b university shape schema."""
    return university_shapes()


@pytest.fixture(scope="session")
def uni_result(uni_graph, uni_shapes):
    """The Figure 2c/2d transformation result (parsimonious)."""
    return transform(uni_graph, uni_shapes)


@pytest.fixture(scope="session")
def small_dbpedia():
    """A small DBpedia-like bundle (graph + extracted shapes)."""
    return load_dataset("dbpedia2022", scale=0.1)


@pytest.fixture(scope="session")
def small_bio2rdf():
    """A small Bio2RDF-like bundle (graph + extracted shapes)."""
    return load_dataset("bio2rdf", scale=0.1)
