"""Differential harness: the cost-based planner vs naive evaluation.

The planner only changes *how* basic graph patterns and MATCH paths are
enumerated, so every query must return bag-identical results with the
planner off, on (cost model), hash join forced, and nested loop forced —
on both engines.  This file checks that over randomized schemas/data
(hypothesis), over the fixed university fixture with multi-pattern
star/chain joins, and through the ``planner_differential`` fuzz oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import DEFAULT_OPTIONS, MONOTONE_OPTIONS, S3PG
from repro.datasets.university import university_graph, university_shapes
from repro.eval.metrics import normalize_cypher_rows, normalize_sparql_rows
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine, SparqlToCypherTranslator

from tests.core.test_properties import schema_and_data

# (tag, engine kwargs) — shared by both engines.  The 5-way matrix of
# the fuzz oracle (planner-off / iterator / batched / adaptive /
# hash-forced) plus nested-forced and batched-with-forced-joins arms.
STRATEGIES = (
    ("planner-off", {"planner": False}),
    ("planner-on", {}),
    ("batched", {"exec_mode": "batched"}),
    ("adaptive", {"exec_mode": "adaptive"}),
    ("hash-forced", {"force_join": "hash"}),
    ("nested-forced", {"force_join": "nested"}),
    ("batched-hash", {"exec_mode": "batched", "force_join": "hash"}),
    ("batched-nested", {"exec_mode": "batched", "force_join": "nested"}),
)

PREFIX = "PREFIX uni: <http://example.org/university#>\n"

# Multi-pattern join shapes over the Figure 2 university data: a chain
# (student -> advisor -> department -> university), a star around the
# advisor, and friends.  All LIMIT-free: LIMIT without ORDER BY may
# truncate any subset, so correct plans could legitimately disagree.
UNIVERSITY_SPARQL = [
    PREFIX + "SELECT ?s WHERE { ?s a uni:Student . }",
    PREFIX + "SELECT ?s ?n WHERE { ?s a uni:Student ; uni:name ?n . }",
    PREFIX
    + "SELECT ?s ?d WHERE { ?s a uni:Student ; uni:advisedBy ?p . "
    "?p uni:worksFor ?d . }",
    PREFIX
    + "SELECT ?s ?u WHERE { ?s uni:advisedBy ?p . ?p uni:worksFor ?d . "
    "?d uni:partOf ?u . }",
    PREFIX
    + "SELECT ?p ?n ?d WHERE { ?p a uni:Professor ; uni:name ?n ; "
    "uni:worksFor ?d . }",
    PREFIX
    + "SELECT ?a ?b WHERE { ?a uni:advisedBy ?p . ?b uni:advisedBy ?p . }",
    PREFIX
    + "SELECT ?s ?c WHERE { ?s a uni:Student ; uni:takesCourse ?c ; "
    "uni:advisedBy ?p . }",
    PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?s uni:advisedBy ?p . "
    "?p uni:worksFor ?d . }",
]


def _sparql_bags(graph, query):
    return [
        (tag, normalize_sparql_rows(SparqlEngine(graph, **kwargs).query(query)))
        for tag, kwargs in STRATEGIES
    ]


def _cypher_bags(store, query):
    return [
        (tag, normalize_cypher_rows(CypherEngine(store, **kwargs).query(query)))
        for tag, kwargs in STRATEGIES
    ]


def _assert_all_equal(bags, query):
    base_tag, base = bags[0]
    for tag, rows in bags[1:]:
        assert rows == base, (query, base_tag, tag)


@pytest.fixture(scope="module")
def university():
    graph = university_graph()
    result = S3PG().transform(graph, university_shapes())
    return graph, result


def test_university_sparql_strategies_agree(university):
    graph, _ = university
    for query in UNIVERSITY_SPARQL:
        bags = _sparql_bags(graph, query)
        _assert_all_equal(bags, query)


def test_university_cypher_strategies_agree(university):
    graph, result = university
    store = PropertyGraphStore(result.graph)
    translator = SparqlToCypherTranslator(result.mapping)
    nonempty = 0
    for query in UNIVERSITY_SPARQL:
        cypher = translator.translate_text(query)
        bags = _cypher_bags(store, cypher)
        _assert_all_equal(bags, cypher)
        nonempty += bool(bags[0][1])
    assert nonempty >= 6  # the workload actually exercises the data


def test_cypher_nullable_shared_var(university):
    """OPTIONAL MATCH may bind a variable to null; a later MATCH treats
    it as unbound and rebinds.  Hash joins cannot express that, so the
    planner must fall back — even when hash joins are forced — and stay
    bag-equal with the naive evaluator."""
    _, result = university
    store = PropertyGraphStore(result.graph)
    query = (
        "MATCH (s:uni_Person) "
        "OPTIONAL MATCH (s)-[:uni_advisedBy]->(p) "
        "MATCH (p)-[:uni_worksFor]->(d) "
        "RETURN s.iri AS s, p.iri AS p, d.iri AS d"
    )
    bags = _cypher_bags(store, query)
    assert bags[0][1], "query must return rows for the check to bite"
    _assert_all_equal(bags, query)


def _workload(schema):
    queries = []
    for shape in schema:
        queries.append(f"SELECT ?e WHERE {{ ?e a <{shape.target_class}> . }}")
        for phi in schema.effective_property_shapes(shape.name)[:2]:
            queries.append(
                f"SELECT ?e ?v WHERE {{ ?e a <{shape.target_class}> ; "
                f"<{phi.path}> ?v . }}"
            )
    return queries[:8]


@given(schema_and_data())
@settings(max_examples=20, deadline=None)
def test_random_sparql_strategies_agree(pair):
    schema, graph = pair
    for query in _workload(schema):
        _assert_all_equal(_sparql_bags(graph, query), query)


@given(schema_and_data())
@settings(max_examples=10, deadline=None)
def test_random_cypher_strategies_agree(pair):
    schema, graph = pair
    for options in (DEFAULT_OPTIONS, MONOTONE_OPTIONS):
        result = S3PG(options).transform(graph, schema)
        store = PropertyGraphStore(result.graph)
        translator = SparqlToCypherTranslator(result.mapping)
        for query in _workload(schema):
            cypher = translator.translate_text(query)
            _assert_all_equal(_cypher_bags(store, cypher), cypher)


def test_skewed_catalog_forces_replan():
    """A deliberately skewed catalog provably re-plans mid-query.

    Both engines: the static per-binding fanout estimate is low by more
    than the re-plan threshold on hub-skewed data, so the adaptive mode
    must record at least one re-plan event — and still return the
    iterator mode's bag.
    """
    from repro.fuzz.oracles import _skewed_pg, _skewed_rdf

    graph, sparql = _skewed_rdf(seed=7)
    reference = normalize_sparql_rows(SparqlEngine(graph).query(sparql))
    adaptive = SparqlEngine(graph, exec_mode="adaptive")
    assert normalize_sparql_rows(adaptive.query(sparql)) == reference
    assert adaptive.planner.last_replans, "SPARQL replan did not trigger"
    event = adaptive.planner.last_replans[0]
    assert event["engine"] == "sparql" and event["q_error"] >= 4.0

    pg, cypher = _skewed_pg(seed=7)
    store = PropertyGraphStore(pg)
    reference = normalize_cypher_rows(CypherEngine(store).query(cypher))
    adaptive = CypherEngine(store, exec_mode="adaptive")
    assert normalize_cypher_rows(adaptive.query(cypher)) == reference
    assert adaptive.planner.last_replans, "Cypher replan did not trigger"
    event = adaptive.planner.last_replans[0]
    assert event["engine"] == "cypher" and event["q_error"] >= 4.0


def test_fuzz_oracle_campaign():
    """The 5-way oracle stays green over >= 150 seeded cases per engine,
    with at least one skew seed provably triggering a mid-query re-plan."""
    from repro.fuzz import oracles, run_fuzz

    triggers_before = oracles.REPLAN_TRIGGERS
    report = run_fuzz(
        seed=0,
        cases=400,
        oracle_names=["planner_differential"],
        corpus_dir=None,
        parallel_every=0,
    )
    assert report.ok, report.failures
    # Each oracle run exercises both engines, so >= 150 runs means
    # >= 150 seeded cases per engine through the 5-way matrix.
    assert report.oracle_runs.get("planner_differential", 0) >= 150
    assert oracles.REPLAN_TRIGGERS > triggers_before
