"""Test package."""
