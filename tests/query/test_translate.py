"""Tests for the automated SPARQL-to-Cypher translator."""

import pytest

from repro.core import scalar_to_lexical, transform
from repro.errors import TranslationError
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine, translate_sparql_to_cypher
from repro.rdf import parse_turtle
from repro.shacl import parse_shacl

SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:Album a sh:NodeShape ; sh:targetClass :Album ;
  sh:property [ sh:path :title ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :year ; sh:datatype xsd:integer ;
                sh:minCount 0 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :writer ;
    sh:or ( [ sh:nodeKind sh:IRI ; sh:class :Person ]
            [ sh:datatype xsd:string ] ) ; sh:minCount 0 ] .
shapes:Person a sh:NodeShape ; sh:targetClass :Person ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] .
""")

GRAPH = parse_turtle("""
@prefix : <http://x/> .
:a1 a :Album ; :title "One" ; :year 2001 ; :writer :w1, "Guest Writer" .
:a2 a :Album ; :title "Two" ; :writer "Solo" .
:w1 a :Person ; :name "Billy" .
""")

PROLOG = "PREFIX : <http://x/> "


@pytest.fixture(scope="module")
def setup():
    result = transform(GRAPH, SHAPES)
    return result, SparqlEngine(GRAPH), CypherEngine(PropertyGraphStore(result.graph))


def assert_equivalent(setup, sparql: str):
    result, sparql_engine, cypher_engine = setup
    cypher = translate_sparql_to_cypher(sparql, result.mapping)
    gt = sparql_engine.query(sparql)
    pg_rows = cypher_engine.query(cypher)
    gt_norm = sorted(
        tuple(str(row[key]) for key in sorted(row)) for row in gt
    )
    pg_norm = sorted(
        tuple(scalar_to_lexical(row[key]) for key in sorted(row)) for row in pg_rows
    )
    assert gt_norm == pg_norm, cypher
    return cypher


class TestEquivalence:
    def test_type_only_query(self, setup):
        assert_equivalent(setup, PROLOG + "SELECT ?e WHERE { ?e a :Album . }")

    def test_key_value_property(self, setup):
        cypher = assert_equivalent(
            setup, PROLOG + "SELECT ?e ?t WHERE { ?e a :Album ; :title ?t . }"
        )
        assert "UNWIND" in cypher

    def test_heterogeneous_property(self, setup):
        cypher = assert_equivalent(
            setup, PROLOG + "SELECT ?e ?w WHERE { ?e a :Album ; :writer ?w . }"
        )
        assert "COALESCE" in cypher

    def test_join_query(self, setup):
        assert_equivalent(
            setup,
            PROLOG + "SELECT ?e ?n WHERE { ?e a :Album ; :writer ?w . "
                     "?w a :Person ; :name ?n . }",
        )

    def test_filter_on_key_value(self, setup):
        assert_equivalent(
            setup,
            PROLOG + 'SELECT ?e WHERE { ?e a :Album ; :title ?t . FILTER(?t = "Two") }',
        )

    def test_numeric_filter(self, setup):
        assert_equivalent(
            setup,
            PROLOG + "SELECT ?e ?y WHERE { ?e a :Album ; :year ?y . FILTER(?y > 2000) }",
        )

    def test_constant_literal_object(self, setup):
        assert_equivalent(
            setup, PROLOG + 'SELECT ?e WHERE { ?e a :Album ; :writer "Solo" . }'
        )

    def test_constant_iri_object(self, setup):
        assert_equivalent(
            setup, PROLOG + "SELECT ?e WHERE { ?e :writer :w1 . }"
        )

    def test_constant_subject(self, setup):
        assert_equivalent(
            setup, PROLOG + "SELECT ?w WHERE { :a1 :writer ?w . }"
        )

    def test_count_query(self, setup):
        assert_equivalent(
            setup,
            PROLOG + "SELECT (COUNT(*) AS ?n) WHERE { ?e a :Album ; :writer ?w . }",
        )

    def test_distinct(self, setup):
        assert_equivalent(
            setup,
            PROLOG + "SELECT DISTINCT ?e WHERE { ?e a :Album ; :writer ?w . }",
        )

    def test_untyped_subject_query(self, setup):
        assert_equivalent(
            setup, PROLOG + "SELECT ?e ?t WHERE { ?e :title ?t . }"
        )

    def test_shared_value_variable_joins(self, setup):
        """Two key/value patterns on the same value variable must join on
        equal values; a second ``UNWIND ... AS t`` would silently rebind
        ``t`` and produce the cartesian product instead."""
        result, sparql_engine, _ = setup
        sparql = PROLOG + "SELECT ?a ?b WHERE { ?a :title ?t . ?b :title ?t . }"
        assert len(sparql_engine.query(sparql)) == 2  # each album with itself
        cypher = assert_equivalent(setup, sparql)
        assert cypher.count("UNWIND") == 2
        assert "WITH * WHERE" in cypher


class TestUnsupportedConstructs:
    def test_variable_predicate_rejected(self, setup):
        result, _, _ = setup
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?e WHERE { ?e ?p ?o . }", result.mapping
            )

    def test_variable_class_rejected(self, setup):
        result, _, _ = setup
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?e WHERE { ?e a ?c . }", result.mapping
            )

    def test_unknown_class_rejected(self, setup):
        result, _, _ = setup
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?e WHERE { ?e a :Ghost . }", result.mapping
            )

    def test_unknown_predicate_rejected(self, setup):
        result, _, _ = setup
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?e WHERE { ?e :ghost ?v . }", result.mapping
            )

    def test_unsupported_filter_rejected(self, setup):
        result, _, _ = setup
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?e WHERE { ?e a :Album ; :title ?t . "
                         "FILTER(isLiteral(?t)) }",
                result.mapping,
            )


class TestTypedLiteralValuesOption:
    def test_untyped_graphs_match_constant_queries(self):
        """The translator must encode constants the way the graph stores
        them (typed_literal_values=False keeps lexical forms)."""
        from repro.core import TransformOptions

        untyped = TransformOptions(typed_literal_values=False)
        result = transform(GRAPH, SHAPES, options=untyped)
        engine = CypherEngine(PropertyGraphStore(result.graph))
        sparql = PROLOG + "SELECT ?e WHERE { ?e a :Album ; :year 2001 . }"
        cypher = translate_sparql_to_cypher(
            sparql, result.mapping, typed_literal_values=False
        )
        assert len(engine.query(cypher)) == len(SparqlEngine(GRAPH).query(sparql))

    def test_default_typed_translation_unchanged(self):
        result = transform(GRAPH, SHAPES)
        engine = CypherEngine(PropertyGraphStore(result.graph))
        sparql = PROLOG + "SELECT ?e WHERE { ?e a :Album ; :year 2001 . }"
        cypher = translate_sparql_to_cypher(sparql, result.mapping)
        assert len(engine.query(cypher)) == 1
