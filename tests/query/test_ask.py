"""Tests for SPARQL ASK queries and their translation."""

import pytest

from repro.core import transform
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine, translate_sparql_to_cypher
from repro.rdf import parse_turtle
from repro.shacl import parse_shacl

GRAPH = parse_turtle("""
@prefix : <http://x/> .
:a a :P ; :name "A" ; :buddy :b .
:b a :P ; :name "B" .
""")

SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:P a sh:NodeShape ; sh:targetClass :P ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :buddy ; sh:nodeKind sh:IRI ; sh:class :P ;
                sh:minCount 0 ] .
""")

PROLOG = "PREFIX : <http://x/> "


@pytest.fixture(scope="module")
def engines():
    result = transform(GRAPH, SHAPES)
    return result, SparqlEngine(GRAPH), CypherEngine(PropertyGraphStore(result.graph))


class TestSparqlAsk:
    def test_true_when_pattern_matches(self):
        assert SparqlEngine(GRAPH).ask(PROLOG + "ASK { ?e a :P . }")

    def test_false_when_no_match(self):
        assert not SparqlEngine(GRAPH).ask(PROLOG + "ASK { ?e a :Ghost . }")

    def test_where_keyword_optional(self):
        engine = SparqlEngine(GRAPH)
        assert engine.ask(PROLOG + "ASK WHERE { :a :buddy :b . }")
        assert engine.ask(PROLOG + "ASK { :a :buddy :b . }")

    def test_ask_with_filter(self):
        assert SparqlEngine(GRAPH).ask(
            PROLOG + 'ASK { ?e :name ?n . FILTER(?n = "B") }'
        )
        assert not SparqlEngine(GRAPH).ask(
            PROLOG + 'ASK { ?e :name ?n . FILTER(?n = "Z") }'
        )

    def test_result_row_shape(self):
        rows = SparqlEngine(GRAPH).query(PROLOG + "ASK { ?e a :P . }")
        assert rows[0]["ask"].to_python() is True


class TestAskTranslation:
    @pytest.mark.parametrize(
        "body,expected",
        [
            ("{ ?e a :P ; :name ?n . }", True),
            ("{ ?e a :P ; :buddy :b . }", True),
            ('{ ?e a :P ; :name "Z" . }', False),
        ],
    )
    def test_translated_ask_agrees(self, engines, body, expected):
        result, sparql_engine, cypher_engine = engines
        sparql = PROLOG + "ASK " + body
        cypher = translate_sparql_to_cypher(sparql, result.mapping)
        assert "count(*) AS ask" in cypher
        assert sparql_engine.ask(sparql) is expected
        assert (cypher_engine.query(cypher)[0]["ask"] > 0) is expected
