"""Unit tests for the SPARQL parser."""

import pytest

from repro.errors import QueryError
from repro.namespaces import RDF_TYPE, XSD
from repro.query.sparql import (
    Comparison,
    IsLiteralFn,
    RegexFn,
    TriplePattern,
    Var,
    parse_sparql,
)
from repro.rdf import IRI, Literal


class TestProjection:
    def test_select_vars(self):
        q = parse_sparql("SELECT ?a ?b WHERE { ?a <http://x/p> ?b . }")
        assert [v.name for v in q.variables] == ["a", "b"]

    def test_select_star(self):
        q = parse_sparql("SELECT * WHERE { ?a <http://x/p> ?b . }")
        assert q.variables == []
        assert q.all_variables() == ["a", "b"]

    def test_select_distinct(self):
        q = parse_sparql("SELECT DISTINCT ?a WHERE { ?a <http://x/p> ?b . }")
        assert q.distinct

    def test_count_star(self):
        q = parse_sparql("SELECT (COUNT(*) AS ?n) WHERE { ?a <http://x/p> ?b . }")
        assert q.count == "n"

    def test_empty_projection_rejected(self):
        with pytest.raises(QueryError):
            parse_sparql("SELECT WHERE { ?a <http://x/p> ?b . }")


class TestPatterns:
    def test_a_keyword_expands_to_rdf_type(self):
        q = parse_sparql("SELECT ?e WHERE { ?e a <http://x/C> . }")
        assert q.patterns[0].p == IRI(RDF_TYPE)

    def test_prefixed_names(self):
        q = parse_sparql("PREFIX ex: <http://x/> SELECT ?e WHERE { ?e ex:p ex:o . }")
        assert q.patterns[0].p == IRI("http://x/p")
        assert q.patterns[0].o == IRI("http://x/o")

    def test_semicolon_and_comma(self):
        q = parse_sparql(
            "PREFIX ex: <http://x/> SELECT ?e WHERE "
            "{ ?e ex:p ?a, ?b ; ex:q ?c . }"
        )
        assert len(q.patterns) == 3

    def test_literal_objects(self):
        q = parse_sparql(
            'PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> '
            'SELECT ?e WHERE { ?e <http://x/p> "v"^^xsd:date . }'
        )
        assert q.patterns[0].o == Literal("v", XSD.date)

    def test_numeric_literal_object(self):
        q = parse_sparql("SELECT ?e WHERE { ?e <http://x/p> 42 . }")
        assert q.patterns[0].o == Literal("42", XSD.integer)

    def test_language_literal_object(self):
        q = parse_sparql('SELECT ?e WHERE { ?e <http://x/p> "v"@en . }')
        assert q.patterns[0].o == Literal("v", language="en")

    def test_multiple_statement_blocks(self):
        q = parse_sparql(
            "SELECT ?a ?b WHERE { ?a <http://x/p> ?x . ?b <http://x/q> ?x . }"
        )
        assert len(q.patterns) == 2

    def test_limit(self):
        q = parse_sparql("SELECT ?a WHERE { ?a <http://x/p> ?b . } LIMIT 5")
        assert q.limit == 5


class TestFilters:
    def test_comparison_filter(self):
        q = parse_sparql(
            "SELECT ?a WHERE { ?a <http://x/p> ?v . FILTER(?v > 3) }"
        )
        assert isinstance(q.filters[0], Comparison)
        assert q.filters[0].op == ">"

    def test_boolean_combination(self):
        q = parse_sparql(
            "SELECT ?a WHERE { ?a <http://x/p> ?v . FILTER(?v > 3 && ?v < 9) }"
        )
        from repro.query.sparql import BooleanOp

        assert isinstance(q.filters[0], BooleanOp)

    def test_builtins(self):
        q = parse_sparql(
            "SELECT ?a WHERE { ?a <http://x/p> ?v . FILTER(isLiteral(?v)) }"
        )
        assert isinstance(q.filters[0], IsLiteralFn)

    def test_regex(self):
        q = parse_sparql(
            'SELECT ?a WHERE { ?a <http://x/p> ?v . FILTER(REGEX(?v, "ab.*")) }'
        )
        assert isinstance(q.filters[0], RegexFn)
        assert q.filters[0].pattern == "ab.*"

    def test_negation(self):
        from repro.query.sparql import NotOp

        q = parse_sparql(
            "SELECT ?a WHERE { ?a <http://x/p> ?v . FILTER(!(?v = 1)) }"
        )
        assert isinstance(q.filters[0], NotOp)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT ?a { ?a <http://x/p> ?b . }",  # missing WHERE
            "SELECT ?a WHERE { ?a <http://x/p> ?b . ",  # unterminated block
            "SELECT ?a WHERE { ?a <http://x/p> ?b . } LIMIT x",
            "SELECT ?a WHERE { ?a <http://x/p> ?b . } trailing",
            "SELECT ?a WHERE { ?a zzz:p ?b . }",  # unknown prefix
        ],
    )
    def test_invalid_queries_raise(self, bad):
        with pytest.raises(QueryError):
            parse_sparql(bad)
