"""Unit tests for SPARQL evaluation over the indexed triple store."""

import pytest

from repro.query.sparql import SparqlEngine
from repro.rdf import parse_turtle

GRAPH = parse_turtle("""
@prefix : <http://x/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
:a a :Person ; :name "Ann" ; :age 30 ; :knows :b, :c .
:b a :Person ; :name "Bob" ; :age 25 ; :knows :c .
:c a :Person, :Admin ; :name "Cat" ; :age 41 .
:d a :Robot ; :name "Ann" .
""")

PROLOG = "PREFIX : <http://x/> "


@pytest.fixture(scope="module")
def engine():
    return SparqlEngine(GRAPH)


class TestBasicMatching:
    def test_type_query(self, engine):
        assert engine.count(PROLOG + "SELECT ?e WHERE { ?e a :Person . }") == 3

    def test_join_across_patterns(self, engine):
        rows = engine.query(PROLOG + "SELECT ?x ?y WHERE { ?x :knows ?y . ?y a :Admin . }")
        assert {str(r["x"]) for r in rows} == {"http://x/a", "http://x/b"}

    def test_constant_object(self, engine):
        rows = engine.query(PROLOG + 'SELECT ?e WHERE { ?e :name "Ann" . }')
        assert {str(r["e"]) for r in rows} == {"http://x/a", "http://x/d"}

    def test_constant_subject(self, engine):
        rows = engine.query(PROLOG + "SELECT ?v WHERE { :a :knows ?v . }")
        assert len(rows) == 2

    def test_shared_variable_join(self, engine):
        # entities that know someone with the same age as themselves: none
        rows = engine.query(
            PROLOG + "SELECT ?x WHERE { ?x :age ?n . ?x :knows ?y . ?y :age ?n . }"
        )
        assert rows == []

    def test_no_match_returns_empty(self, engine):
        assert engine.query(PROLOG + "SELECT ?e WHERE { ?e a :Alien . }") == []

    def test_cartesian_product_when_disconnected(self, engine):
        rows = engine.query(
            PROLOG + "SELECT ?x ?y WHERE { ?x a :Robot . ?y a :Admin . }"
        )
        assert len(rows) == 1


class TestModifiers:
    def test_distinct(self, engine):
        without = engine.query(PROLOG + "SELECT ?x WHERE { ?x :knows ?y . }")
        with_distinct = engine.query(
            PROLOG + "SELECT DISTINCT ?x WHERE { ?x :knows ?y . }"
        )
        assert len(without) == 3 and len(with_distinct) == 2

    def test_limit(self, engine):
        rows = engine.query(PROLOG + "SELECT ?e WHERE { ?e a :Person . } LIMIT 2")
        assert len(rows) == 2

    def test_count_star(self, engine):
        rows = engine.query(
            PROLOG + "SELECT (COUNT(*) AS ?n) WHERE { ?e a :Person . }"
        )
        assert rows[0]["n"].to_python() == 3

    def test_select_star_binds_all(self, engine):
        rows = engine.query(PROLOG + "SELECT * WHERE { ?x :knows ?y . }")
        assert set(rows[0]) == {"x", "y"}


class TestFilters:
    def test_numeric_comparison(self, engine):
        rows = engine.query(
            PROLOG + "SELECT ?e WHERE { ?e :age ?n . FILTER(?n > 28) }"
        )
        assert {str(r["e"]) for r in rows} == {"http://x/a", "http://x/c"}

    def test_equality_on_string(self, engine):
        rows = engine.query(
            PROLOG + 'SELECT ?e WHERE { ?e :name ?n . FILTER(?n = "Bob") }'
        )
        assert len(rows) == 1

    def test_boolean_and(self, engine):
        rows = engine.query(
            PROLOG + "SELECT ?e WHERE { ?e :age ?n . FILTER(?n > 20 && ?n < 30) }"
        )
        assert len(rows) == 1

    def test_boolean_or(self, engine):
        rows = engine.query(
            PROLOG + "SELECT ?e WHERE { ?e :age ?n . FILTER(?n < 26 || ?n > 40) }"
        )
        assert len(rows) == 2

    def test_negation(self, engine):
        rows = engine.query(
            PROLOG + "SELECT ?e WHERE { ?e :age ?n . FILTER(!(?n = 30)) }"
        )
        assert len(rows) == 2

    def test_is_literal(self, engine):
        rows = engine.query(
            PROLOG + "SELECT ?e ?v WHERE { ?e :knows ?v . FILTER(isLiteral(?v)) }"
        )
        assert rows == []

    def test_is_iri(self, engine):
        rows = engine.query(
            PROLOG + "SELECT ?e ?v WHERE { ?e :knows ?v . FILTER(isIRI(?v)) }"
        )
        assert len(rows) == 3

    def test_regex(self, engine):
        rows = engine.query(
            PROLOG + 'SELECT ?e WHERE { ?e :name ?n . FILTER(REGEX(?n, "^A")) }'
        )
        assert len(rows) == 2

    def test_str_comparison(self, engine):
        rows = engine.query(
            PROLOG + 'SELECT ?e WHERE { ?e :knows ?v . FILTER(STR(?v) = "http://x/c") }'
        )
        assert len(rows) == 2

    def test_incomparable_types_filter_to_false(self, engine):
        rows = engine.query(
            PROLOG + 'SELECT ?e WHERE { ?e :name ?n . FILTER(?n > 100) }'
        )
        assert rows == []
