"""Unit tests for Cypher evaluation over the indexed PG store."""

import pytest

from repro.pg import PropertyGraph, PropertyGraphStore
from repro.query.cypher import CypherEngine


@pytest.fixture(scope="module")
def engine() -> CypherEngine:
    pg = PropertyGraph()
    pg.add_node("a", labels={"Person"},
                properties={"iri": "http://x/a", "name": "Ann", "age": 30,
                            "tags": ["x", "y"]})
    pg.add_node("b", labels={"Person"},
                properties={"iri": "http://x/b", "name": "Bob", "age": 25})
    pg.add_node("c", labels={"Person", "Admin"},
                properties={"iri": "http://x/c", "name": "Cat"})
    pg.add_node("lit1", labels={"STRING"}, properties={"value": "hello"})
    pg.add_edge("a", "b", labels={"knows"}, edge_id="e1")
    pg.add_edge("a", "c", labels={"knows"}, edge_id="e2")
    pg.add_edge("b", "lit1", labels={"note"}, edge_id="e3")
    return CypherEngine(PropertyGraphStore(pg))


class TestMatch:
    def test_label_scan(self, engine):
        assert engine.count("MATCH (n:Person) RETURN n") == 3

    def test_multi_label_constraint(self, engine):
        assert engine.count("MATCH (n:Person:Admin) RETURN n") == 1

    def test_property_constraint(self, engine):
        rows = engine.query("MATCH (n {name: 'Bob'}) RETURN n.iri")
        assert rows == [{"n.iri": "http://x/b"}]

    def test_outgoing_traversal(self, engine):
        rows = engine.query("MATCH (a {name: 'Ann'})-[:knows]->(m) RETURN m.name AS n")
        assert {r["n"] for r in rows} == {"Bob", "Cat"}

    def test_incoming_traversal(self, engine):
        rows = engine.query("MATCH (m)<-[:knows]-(a) RETURN m.name AS n")
        assert {r["n"] for r in rows} == {"Bob", "Cat"}

    def test_undirected_traversal(self, engine):
        assert engine.count("MATCH (b {name: 'Bob'})-[:knows]-(x) RETURN x") == 1

    def test_type_alternatives(self, engine):
        assert engine.count("MATCH (n)-[:knows|note]->(m) RETURN m") == 3

    def test_multi_hop(self, engine):
        rows = engine.query(
            "MATCH (a {name: 'Ann'})-[:knows]->(b)-[:note]->(l) RETURN l.value AS v"
        )
        assert rows == [{"v": "hello"}]

    def test_multiple_paths_join_on_shared_var(self, engine):
        rows = engine.query(
            "MATCH (a)-[:knows]->(m), (m)-[:note]->(l) RETURN m.name AS n"
        )
        assert rows == [{"n": "Bob"}]

    def test_where_filters(self, engine):
        rows = engine.query("MATCH (n:Person) WHERE n.age > 26 RETURN n.name AS n")
        assert rows == [{"n": "Ann"}]

    def test_where_is_null(self, engine):
        rows = engine.query("MATCH (n:Person) WHERE n.age IS NULL RETURN n.name AS n")
        assert rows == [{"n": "Cat"}]

    def test_where_has_label(self, engine):
        rows = engine.query("MATCH (n:Person) WHERE n:Admin RETURN n.name AS n")
        assert rows == [{"n": "Cat"}]

    def test_relationship_variable_bound(self, engine):
        rows = engine.query("MATCH (a)-[r:note]->(b) RETURN r")
        assert len(rows) == 1


class TestUnwindAndWith:
    def test_unwind_array(self, engine):
        rows = engine.query("MATCH (n {name: 'Ann'}) UNWIND n.tags AS t RETURN t")
        assert sorted(r["t"] for r in rows) == ["x", "y"]

    def test_unwind_scalar_yields_itself(self, engine):
        rows = engine.query("MATCH (n {name: 'Bob'}) UNWIND n.name AS v RETURN v")
        assert rows == [{"v": "Bob"}]

    def test_unwind_null_yields_nothing(self, engine):
        rows = engine.query("MATCH (n {name: 'Bob'}) UNWIND n.tags AS v RETURN v")
        assert rows == []

    def test_with_star_where_after_unwind(self, engine):
        rows = engine.query(
            "MATCH (n {name: 'Ann'}) UNWIND n.tags AS t "
            "WITH * WHERE t = 'x' RETURN t"
        )
        assert rows == [{"t": "x"}]


class TestReturn:
    def test_coalesce_mixed_targets(self, engine):
        rows = engine.query(
            "MATCH (n)-[:knows|note]->(m) "
            "RETURN COALESCE(m.value, m.iri) AS v"
        )
        assert {r["v"] for r in rows} == {"http://x/b", "http://x/c", "hello"}

    def test_missing_property_is_null(self, engine):
        rows = engine.query("MATCH (n {name: 'Cat'}) RETURN n.age AS a")
        assert rows == [{"a": None}]

    def test_distinct(self, engine):
        rows = engine.query("MATCH (a)-[:knows]->(m) RETURN DISTINCT a.name AS n")
        assert rows == [{"n": "Ann"}]

    def test_limit(self, engine):
        assert engine.count("MATCH (n:Person) RETURN n LIMIT 2") == 2

    def test_count_star(self, engine):
        rows = engine.query("MATCH (n:Person) RETURN count(*) AS c")
        assert rows == [{"c": 3}]

    def test_count_with_grouping(self, engine):
        rows = engine.query(
            "MATCH (a)-[:knows]->(m) RETURN a.name AS n, count(*) AS c"
        )
        assert rows == [{"n": "Ann", "c": 2}]

    def test_count_empty_match_is_zero(self, engine):
        rows = engine.query("MATCH (n:Ghost) RETURN count(*) AS c")
        assert rows == [{"c": 0}]

    def test_union_all_concatenates(self, engine):
        rows = engine.query(
            "MATCH (n:Admin) RETURN n.name AS v "
            "UNION ALL MATCH (n {name: 'Bob'}) RETURN n.name AS v"
        )
        assert sorted(r["v"] for r in rows) == ["Bob", "Cat"]

    def test_union_all_arity_mismatch_raises(self, engine):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            engine.query(
                "MATCH (n) RETURN n.a AS x "
                "UNION ALL MATCH (n) RETURN n.a AS x, n.b AS y"
            )

    def test_unbound_variable_raises(self, engine):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            engine.query("MATCH (n:Person) RETURN ghost")


class TestSelfLoopUniqueness:
    @pytest.fixture(scope="class")
    def loop_engine(self) -> CypherEngine:
        pg = PropertyGraph()
        pg.add_node("a", labels={"Person"}, properties={"name": "Ann"})
        pg.add_node("b", labels={"Person"}, properties={"name": "Bob"})
        pg.add_edge("a", "a", labels={"knows"}, edge_id="loop")
        pg.add_edge("a", "b", labels={"knows"}, edge_id="e1")
        return CypherEngine(PropertyGraphStore(pg))

    def test_undirected_match_yields_loop_once(self, loop_engine):
        # The self-loop matches once; the a-b edge matches from both ends.
        assert loop_engine.count("MATCH (x)-[:knows]-(y) RETURN x") == 3

    def test_undirected_from_anchored_node(self, loop_engine):
        rows = loop_engine.query(
            "MATCH (x {name: 'Ann'})-[:knows]-(y) RETURN y.name AS n"
        )
        assert sorted(r["n"] for r in rows) == ["Ann", "Bob"]

    def test_directed_loop_counts_each_direction(self, loop_engine):
        assert loop_engine.count("MATCH (x)-[:knows]->(y) RETURN x") == 2
        assert loop_engine.count("MATCH (x)<-[:knows]-(y) RETURN x") == 2
