"""Edge cases of the vectorized batch operators.

Each test pins a batch-boundary hazard of
:mod:`repro.query.plan.vectorized` against the iterator pipeline:
batches straddling LIMIT, empty batches, OPTIONAL null columns around
``BatchHashJoin``, self-loops through ``BatchExpand``, and a batch-size
sweep asserting identical bags at sizes 1, 2, and 1024.
"""

from __future__ import annotations

from array import array

import pytest

from repro.eval.metrics import normalize_cypher_rows, normalize_sparql_rows
from repro.pg.model import PropertyGraph
from repro.pg.store import PropertyGraphStore
from repro.query.cypher.evaluator import CypherEngine
from repro.query.sparql.evaluator import SparqlEngine
from repro.rdf.graph import Graph, Triple
from repro.rdf.terms import IRI, Literal
from repro.storage.postings import IntPostings

EX = "http://ex/"
EXEC_MODES = ("iterator", "batched", "adaptive")


def _person_graph(n: int = 50) -> Graph:
    g = Graph()
    rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
    for i in range(n):
        p = IRI(EX + f"p/{i}")
        g.add(Triple(p, rdf_type, IRI(EX + "Person")))
        g.add(Triple(p, IRI(EX + "name"), Literal(f"name{i:03d}")))
        g.add(Triple(p, IRI(EX + "knows"), IRI(EX + f"p/{(i * 7) % n}")))
    return g


def _pg() -> PropertyGraph:
    pg = PropertyGraph()
    for i in range(30):
        pg.add_node(f"p{i}", {"Person"}, {"name": f"n{i:02d}", "age": i % 7})
    for i in range(30):
        pg.add_edge(f"p{i}", f"p{(i * 11) % 30}", {"KNOWS"})
        if i % 5 == 0:
            pg.add_edge(f"p{i}", f"p{i}", {"KNOWS"})  # self-loops
    pg.add_edge("p1", "p2", {"KNOWS", "LIKES"})  # multi-label edge
    return pg


def _sparql_bags(graph, query, **kwargs):
    return {
        mode: normalize_sparql_rows(
            SparqlEngine(graph, exec_mode=mode, **kwargs).query(query)
        )
        for mode in EXEC_MODES
    }


def _cypher_bags(store, query, **kwargs):
    return {
        mode: normalize_cypher_rows(
            CypherEngine(store, exec_mode=mode, **kwargs).query(query)
        )
        for mode in EXEC_MODES
    }


def _assert_modes_agree(bags, query):
    for mode, rows in bags.items():
        assert rows == bags["iterator"], (query, mode)


# --------------------------------------------------------------------- #
# LIMIT straddling batch boundaries
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("batch_size", [1, 2, 7, 1024])
@pytest.mark.parametrize("limit", [1, 7, 8, 9, 49, 200])
def test_sparql_limit_straddles_batches(batch_size, limit):
    """ORDER BY + LIMIT must cut at the same rows regardless of how the
    result bag was chunked into batches (including limits equal to, one
    below, and one past a batch boundary)."""
    g = _person_graph()
    q = (
        f"SELECT ?s ?n WHERE {{ ?s a <{EX}Person> . ?s <{EX}name> ?n . }} "
        f"ORDER BY ?n LIMIT {limit}"
    )
    expected = SparqlEngine(g).query(q)
    for mode in ("batched", "adaptive"):
        got = SparqlEngine(g, exec_mode=mode, batch_size=batch_size).query(q)
        assert [r["n"].lexical for r in got] == [r["n"].lexical for r in expected]


@pytest.mark.parametrize("limit", [1, 5, 30, 99])
def test_cypher_limit_straddles_batches(limit):
    store = PropertyGraphStore(_pg())
    q = f"MATCH (a:Person) RETURN a.name ORDER BY a.name LIMIT {limit}"
    expected = CypherEngine(store).query(q)
    for batch_size in (1, 2, 1024):
        for mode in ("batched", "adaptive"):
            got = CypherEngine(
                store, exec_mode=mode, batch_size=batch_size
            ).query(q)
            assert got == expected, (mode, batch_size)


# --------------------------------------------------------------------- #
# Empty batches / empty inputs
# --------------------------------------------------------------------- #

def test_empty_results_all_modes():
    g = _person_graph(5)
    store = PropertyGraphStore(_pg())
    sparql = [
        f"SELECT ?s WHERE {{ ?s a <{EX}Nothing> . }}",
        f"SELECT ?s ?n WHERE {{ ?s a <{EX}Person> . ?s <{EX}missing> ?n . }}",
        # ?x binds to literals in the first pattern, so the second
        # probes with a literal subject — dead at run time.
        f"SELECT ?o WHERE {{ ?s <{EX}name> ?x . ?x <{EX}name> ?o . }}",
    ]
    for q in sparql:
        bags = _sparql_bags(g, q)
        assert not bags["iterator"]
        _assert_modes_agree(bags, q)
    cypher = [
        "MATCH (a:Ghost) RETURN a.name",
        "MATCH (a:Person)-[:MISSING]->(b) RETURN a.name",
        "MATCH (a:Person {age: 99}) RETURN a.name",
    ]
    for q in cypher:
        bags = _cypher_bags(store, q)
        assert not bags["iterator"]
        _assert_modes_agree(bags, q)


def test_empty_graph_all_modes():
    g = Graph()
    q = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?o <{EX}q> ?x . }}"
    _assert_modes_agree(_sparql_bags(g, q), q)
    store = PropertyGraphStore(PropertyGraph())
    cq = "MATCH (a)-[:R]->(b) RETURN a.name"
    _assert_modes_agree(_cypher_bags(store, cq), cq)


# --------------------------------------------------------------------- #
# OPTIONAL null columns around the batched hash join
# --------------------------------------------------------------------- #

def test_optional_null_shared_var_through_batched_join():
    """OPTIONAL MATCH binds some rows to null; a later MATCH sharing the
    variable must treat null as unbound (rebind), which a hash-join key
    cannot express — every exec mode must take the correlated fallback
    and agree with the iterator, even with hash joins forced."""
    pg = _pg()
    pg.add_node("lonely", {"Person"}, {"name": "zz"})  # no KNOWS edges
    store = PropertyGraphStore(pg)
    q = (
        "MATCH (a:Person) "
        "OPTIONAL MATCH (a)-[:LIKES]->(b) "
        "MATCH (b)-[:KNOWS]->(c) "
        "RETURN a.name, b.name, c.name"
    )
    bags = _cypher_bags(store, q)
    assert bags["iterator"], "query must return rows for the check to bite"
    _assert_modes_agree(bags, q)
    forced = _cypher_bags(store, q, force_join="hash")
    _assert_modes_agree(forced, q)
    assert forced["batched"] == bags["iterator"]


def test_optional_rows_survive_batched_bgp():
    """OPTIONAL groups run downstream of the batched BGP; unmatched rows
    keep their null extension in every mode."""
    g = _person_graph(10)
    g.add(Triple(IRI(EX + "p/3"), IRI(EX + "nick"), Literal("trey")))
    q = (
        f"SELECT ?s ?n ?k WHERE {{ ?s a <{EX}Person> . ?s <{EX}name> ?n . "
        f"OPTIONAL {{ ?s <{EX}nick> ?k . }} }}"
    )
    bags = _sparql_bags(g, q)
    assert any("k" in row for row in SparqlEngine(g).query(q))
    _assert_modes_agree(bags, q)


# --------------------------------------------------------------------- #
# Self-loops through BatchExpand
# --------------------------------------------------------------------- #

def test_self_loops_directed_and_undirected():
    store = PropertyGraphStore(_pg())
    queries = [
        # Directed: a self-loop matches (a)-[:KNOWS]->(a).
        "MATCH (a:Person)-[:KNOWS]->(a) RETURN a.name",
        # Undirected: openCypher yields a self-loop once, not twice.
        "MATCH (a:Person)-[:KNOWS]-(b) RETURN a.name, b.name",
        # Unconstrained undirected expansion over multi-label edges.
        "MATCH (a)-[r]-(b) RETURN a.name, b.name",
    ]
    for q in queries:
        bags = _cypher_bags(store, q)
        assert bags["iterator"], q
        _assert_modes_agree(bags, q)


def test_rel_var_equals_node_var_is_empty():
    """-[x]->(x) can never match: the same variable cannot be both the
    edge and its endpoint."""
    store = PropertyGraphStore(_pg())
    q = "MATCH (a:Person)-[x:KNOWS]->(x) RETURN a.name"
    _assert_modes_agree(_cypher_bags(store, q), q)
    assert CypherEngine(store, exec_mode="batched").query(q) == []


# --------------------------------------------------------------------- #
# Batch-size sweep
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("batch_size", [1, 2, 1024])
def test_batch_size_sweep_sparql(batch_size):
    g = _person_graph()
    queries = [
        f"SELECT ?s ?n WHERE {{ ?s a <{EX}Person> . ?s <{EX}name> ?n . }}",
        f"SELECT ?a ?b WHERE {{ ?a <{EX}knows> ?b . ?b <{EX}knows> ?a . }}",
        f"SELECT ?x WHERE {{ ?x <{EX}knows> ?x . }}",
        f"SELECT ?s ?p ?o WHERE {{ ?s ?p ?o . }}",
    ]
    for q in queries:
        expected = normalize_sparql_rows(SparqlEngine(g).query(q))
        for mode in ("batched", "adaptive"):
            engine = SparqlEngine(g, exec_mode=mode, batch_size=batch_size)
            assert normalize_sparql_rows(engine.query(q)) == expected, (
                mode, batch_size, q,
            )


@pytest.mark.parametrize("batch_size", [1, 2, 1024])
def test_batch_size_sweep_cypher(batch_size):
    store = PropertyGraphStore(_pg())
    queries = [
        "MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, b.name",
        "MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN a.name, c.name",
        "MATCH (a:Person {age: 3}) RETURN a.name",
    ]
    for q in queries:
        expected = normalize_cypher_rows(CypherEngine(store).query(q))
        for mode in ("batched", "adaptive"):
            engine = CypherEngine(store, exec_mode=mode, batch_size=batch_size)
            assert normalize_cypher_rows(engine.query(q)) == expected, (
                mode, batch_size, q,
            )


# --------------------------------------------------------------------- #
# Storage batch-read API
# --------------------------------------------------------------------- #

def test_postings_extend_into():
    postings = IntPostings()
    for v in (5, 1, 9, 3):
        postings.add(v)
    out = array("q", [42])
    assert postings.extend_into(out) == 4
    assert list(out) == [42, 1, 3, 5, 9]


def test_store_endpoint_arrays_track_version():
    pg = _pg()
    store = PropertyGraphStore(pg)
    src, dst = store.endpoint_arrays()
    names = store._names
    for edge in pg.edges.values():
        eid = names.lookup(edge.id)
        assert names.value(src[eid]) == edge.src
        assert names.value(dst[eid]) == edge.dst
    assert store.endpoint_arrays()[0] is src  # cached per version
    node_ids = store.node_id_array()
    assert {names.value(i) for i in node_ids} == set(pg.nodes)


def test_exec_mode_requires_planner():
    g = Graph()
    with pytest.raises(ValueError):
        SparqlEngine(g, planner=False, exec_mode="batched")
    with pytest.raises(ValueError):
        CypherEngine(
            PropertyGraphStore(PropertyGraph()),
            planner=False,
            exec_mode="adaptive",
        )
    with pytest.raises(ValueError):
        SparqlEngine(g, exec_mode="turbo")
