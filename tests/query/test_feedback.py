"""The cardinality-feedback store: q-error telemetry per cached plan.

Every planned execution feeds its EXPLAIN snapshot (estimates + actuals)
back into the planner's :class:`~repro.query.plan.FeedbackStore`, keyed
by the plan-cache key.  These tests pin the q-error math, the sanity of
the recorded numbers on the university workload (both engines), the
execution accounting across repeated runs, and the store's LRU bound.
"""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.core import S3PG
from repro.datasets.university import (
    UNIVERSITY_CYPHER_WORKLOAD,
    generate_university,
    university_graph,
    university_shapes,
    university_workload,
)
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine
from repro.query.plan import FeedbackStore, Q_ERROR_BOUNDARIES, q_error
from repro.query.plan.explain import ExplainNode

PREFIX = "PREFIX uni: <http://example.org/university#>\n"


def test_q_error_math():
    assert q_error(10, 10) == 1.0
    assert q_error(1, 100) == 100.0
    assert q_error(100, 1) == 100.0
    # Zero estimates/actuals are floored at one row, never div-by-zero.
    assert q_error(0, 0) == 1.0
    assert q_error(0, 5) == 5.0
    assert q_error(5, 0) == 5.0


def test_q_error_boundaries_are_sorted_and_start_at_one():
    assert Q_ERROR_BOUNDARIES[0] == 1.0
    assert list(Q_ERROR_BOUNDARIES) == sorted(Q_ERROR_BOUNDARIES)


def _check_store_sanity(store, expected_plans):
    assert len(store) == expected_plans
    summary = store.summary()
    assert summary["plans"] == expected_plans
    assert summary["executions"] >= expected_plans
    assert summary["max_q_error"] >= 1.0
    for entry in store.snapshot():
        assert entry["operators"], entry
        assert math.isfinite(entry["max_q_error"])
        assert 1.0 <= entry["max_q_error"] < 1000.0, entry
        for operator in entry["operators"]:
            assert operator["q_error"] >= 1.0, operator
            assert operator["actual_rows"] >= 0, operator


def test_sparql_feedback_on_university_workload():
    engine = SparqlEngine(generate_university(scale=0.25, seed=7))
    qids = list(university_workload())
    for _qid, _category, query in qids:
        engine.query(query)
    _check_store_sanity(engine.planner.feedback, expected_plans=len(qids))


def test_cypher_feedback_on_university_workload():
    graph = generate_university(scale=0.25, seed=7)
    result = S3PG().transform(graph, university_shapes())
    engine = CypherEngine(PropertyGraphStore(result.graph))
    for _qid, _category, query in UNIVERSITY_CYPHER_WORKLOAD:
        engine.query(query)
    _check_store_sanity(
        engine.planner.feedback, expected_plans=len(UNIVERSITY_CYPHER_WORKLOAD)
    )


def test_feedback_keyed_by_plan_cache_key():
    engine = SparqlEngine(university_graph())
    query = PREFIX + (
        "SELECT ?s ?d WHERE { ?s uni:advisedBy ?p . ?p uni:worksFor ?d . }"
    )
    engine.query(query)
    key = engine.planner.last_key
    assert key is not None
    entry = engine.planner.feedback.get(key)
    assert entry is not None and entry["executions"] == 1

    # Re-running the same query hits the same cached plan and the same
    # feedback slot; a different query gets its own.
    engine.query(query)
    assert engine.planner.last_key == key
    assert engine.planner.feedback.get(key)["executions"] == 2

    engine.query(PREFIX + "SELECT ?s WHERE { ?s a uni:Student . }")
    assert engine.planner.last_key != key
    assert len(engine.planner.feedback) == 2


def test_adaptive_replans_feed_back_under_original_plan_key():
    """A mid-query re-plan must not fragment the feedback history.

    The re-planned execution is keyed to the *original* plan-cache key
    (exec mode and batch size are part of the key; the re-plan is not),
    so repeated runs of an adaptive query accumulate executions in one
    slot — on both engines — while each run records a fresh re-plan
    event and the plan cache keeps serving the same entry.
    """
    from repro.fuzz.oracles import _skewed_pg, _skewed_rdf

    graph, sparql_query = _skewed_rdf(seed=7)
    engine = SparqlEngine(graph, exec_mode="adaptive")
    engine.query(sparql_query)
    key = engine.planner.last_key
    assert key is not None
    assert engine.planner.last_replans, "skew fixture must force a re-plan"
    engine.query(sparql_query)
    assert engine.planner.last_replans, "re-plan must recur on the rerun"
    assert engine.planner.last_key == key
    assert engine.planner.feedback.get(key)["executions"] == 2
    assert len(engine.planner.feedback) == 1

    pg, cypher_query = _skewed_pg(seed=7)
    engine = CypherEngine(PropertyGraphStore(pg), exec_mode="adaptive")
    engine.query(cypher_query)
    key = engine.planner.last_key
    assert key is not None
    assert engine.planner.last_replans, "skew fixture must force a re-plan"
    engine.query(cypher_query)
    assert engine.planner.last_replans, "re-plan must recur on the rerun"
    assert engine.planner.last_key == key
    assert engine.planner.feedback.get(key)["executions"] == 2
    assert len(engine.planner.feedback) == 1


def test_feedback_observes_q_error_histogram():
    obs.get_metrics().reset()
    try:
        engine = SparqlEngine(university_graph())
        engine.query(PREFIX + "SELECT ?s WHERE { ?s uni:advisedBy ?p . }")
        exposition = obs.get_metrics().to_prometheus()
        assert "repro_plan_q_error" in exposition
        assert 'engine="sparql"' in exposition
    finally:
        obs.get_metrics().reset()


def _fake_root(est, act):
    return ExplainNode(
        op="Scan", detail="fake", est_rows=est, actual_rows=act
    )


def test_feedback_store_lru_bound():
    store = FeedbackStore("test", capacity=2)
    store.record(("a",), _fake_root(1, 10))
    store.record(("b",), _fake_root(2, 2))
    store.record(("c",), _fake_root(5, 1))
    assert len(store) == 2
    assert store.get(("a",)) is None  # oldest evicted
    assert store.get(("b",)) is not None
    assert store.get(("c",))["max_q_error"] == pytest.approx(5.0)


def test_feedback_store_ignores_unusable_nodes():
    store = FeedbackStore("test")
    # No actuals at all -> nothing recorded for this key.
    store.record(("x",), ExplainNode(op="Project", est_rows=None))
    assert store.get(("x",)) is None
    assert len(store) == 0
    # None key (planner cache disabled) is a silent no-op.
    store.record(None, _fake_root(1, 1))
    assert len(store) == 0
