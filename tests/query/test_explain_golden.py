"""Golden-file EXPLAIN snapshots for the cost-based planner.

The files under ``tests/query/golden/`` pin the exact plan rendering —
operator order, join strategy, estimated vs actual cardinalities — for a
fixed query set over the deterministic Figure 2 university fixture, so
any planner change that alters a plan shape shows up as a readable diff.
Regenerate them by running this module as a script:
``PYTHONPATH=src python tests/query/test_explain_golden.py``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.core import S3PG
from repro.datasets.university import university_graph, university_shapes
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine

GOLDEN_DIR = Path(__file__).parent / "golden"

PREFIX = "PREFIX uni: <http://example.org/university#>\n"

SPARQL_CASES = {
    # Chain join: student -> advisor -> department (two hash joins).
    "sparql_chain": PREFIX
    + "SELECT ?s ?d WHERE { ?s a uni:Student ; uni:advisedBy ?p . "
    "?p uni:worksFor ?d . }",
    # Star around the professor, with the full modifier tail.
    "sparql_star": PREFIX
    + "SELECT DISTINCT ?n WHERE { ?p a uni:Professor ; uni:name ?n ; "
    "uni:worksFor ?d . } ORDER BY ?n LIMIT 5",
    # Aggregation over a two-pattern join.
    "sparql_count": PREFIX
    + "SELECT (COUNT(*) AS ?n) WHERE { ?s uni:advisedBy ?p . "
    "?p uni:worksFor ?d . }",
}

CYPHER_CASES = {
    # The same chain, natively in Cypher (seed + expands + pivot-free).
    "cypher_chain": (
        "MATCH (s:uni_Student)-[:uni_advisedBy]->(p), "
        "(p)-[:uni_worksFor]->(d) "
        "RETURN s.iri AS s, d.iri AS d"
    ),
    # Mid-path seeding: the department end is the most selective anchor,
    # so the plan pivots and expands the chain backwards.
    "cypher_pivot": (
        "MATCH (p)-[:uni_worksFor]->(d:uni_Department) "
        "RETURN p.iri AS p ORDER BY p"
    ),
}


def _engines():
    graph = university_graph()
    result = S3PG().transform(graph, university_shapes())
    sparql = SparqlEngine(graph)
    cypher = CypherEngine(PropertyGraphStore(result.graph))
    return sparql, cypher


def _batched_engines():
    graph = university_graph()
    result = S3PG().transform(graph, university_shapes())
    sparql = SparqlEngine(graph, exec_mode="batched")
    cypher = CypherEngine(
        PropertyGraphStore(result.graph), exec_mode="batched"
    )
    return sparql, cypher


def _adaptive_engines():
    """Adaptive engines over the deterministic skew fixtures.

    The hub-skewed catalogs (seed 7) provably blow past the re-plan
    q-error threshold mid-query, so the ANALYZE goldens pin the rendered
    ``Replan`` node alongside the batched operator tree.
    """
    from repro.fuzz.oracles import _skewed_pg, _skewed_rdf

    graph, sparql_query = _skewed_rdf(seed=7)
    pg, cypher_query = _skewed_pg(seed=7)
    sparql = SparqlEngine(graph, exec_mode="adaptive")
    cypher = CypherEngine(PropertyGraphStore(pg), exec_mode="adaptive")
    return (sparql, sparql_query), (cypher, cypher_query)


@pytest.fixture(scope="module")
def engines():
    return _engines()


@pytest.fixture(scope="module")
def batched_engines():
    return _batched_engines()


@pytest.fixture(scope="module")
def adaptive_engines():
    return _adaptive_engines()


#: ANALYZE goldens for a representative subset (per engine).
ANALYZE_CASES = {
    "sparql_chain": ("sparql", SPARQL_CASES["sparql_chain"]),
    "cypher_chain": ("cypher", CYPHER_CASES["cypher_chain"]),
    "cypher_pivot": ("cypher", CYPHER_CASES["cypher_pivot"]),
}

_TIME_RE = re.compile(r"time=\d+(?:\.\d+)?ms")


def _mask_text(text: str) -> str:
    """Replace nondeterministic per-operator timings with ``time=?ms``."""
    return _TIME_RE.sub("time=?ms", text)


def _mask_json(node):
    """Replace ``wall_ms`` values throughout an EXPLAIN document."""
    if isinstance(node, dict):
        return {
            key: ("?" if key == "wall_ms" else _mask_json(value))
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [_mask_json(value) for value in node]
    return node


def _render(engine, query, analyze=False):
    text = engine.explain(query, analyze=analyze)
    document = engine.explain(query, fmt="json", analyze=analyze)
    if analyze:
        text = _mask_text(text)
        document = _mask_json(document)
    as_json = json.dumps(document, indent=2, sort_keys=True) + "\n"
    return text if text.endswith("\n") else text + "\n", as_json


@pytest.mark.parametrize("name", sorted(SPARQL_CASES))
def test_sparql_explain_matches_golden(engines, name):
    text, as_json = _render(engines[0], SPARQL_CASES[name])
    assert text == (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert as_json == (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")


@pytest.mark.parametrize("name", sorted(CYPHER_CASES))
def test_cypher_explain_matches_golden(engines, name):
    text, as_json = _render(engines[1], CYPHER_CASES[name])
    assert text == (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert as_json == (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")


#: Plain EXPLAIN goldens for the vectorized (batched) operator trees,
#: over the same university fixture and chain queries as the iterator
#: goldens so the two renderings diff side by side.
BATCHED_CASES = {
    "sparql_chain_batched": ("sparql", SPARQL_CASES["sparql_chain"]),
    "cypher_chain_batched": ("cypher", CYPHER_CASES["cypher_chain"]),
}


@pytest.mark.parametrize("name", sorted(BATCHED_CASES))
def test_batched_explain_matches_golden(batched_engines, name):
    lang, query = BATCHED_CASES[name]
    engine = batched_engines[0] if lang == "sparql" else batched_engines[1]
    text, as_json = _render(engine, query)
    assert text == (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert as_json == (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")


@pytest.mark.parametrize(
    "name", ["sparql_adaptive_replan_analyze", "cypher_adaptive_replan_analyze"]
)
def test_adaptive_replan_analyze_matches_golden(adaptive_engines, name):
    """EXPLAIN ANALYZE of an adaptive run over skewed data renders the
    mid-query ``Replan`` node (estimate, actual, q-error, re-planned join
    count); wall times are masked to ``time=?ms``."""
    pair = adaptive_engines[0] if name.startswith("sparql") else adaptive_engines[1]
    engine, query = pair
    text, as_json = _render(engine, query, analyze=True)
    assert "Replan" in text, text
    assert text == (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert as_json == (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")


@pytest.mark.parametrize("name", sorted(ANALYZE_CASES))
def test_explain_analyze_matches_golden(engines, name):
    lang, query = ANALYZE_CASES[name]
    engine = engines[0] if lang == "sparql" else engines[1]
    text, as_json = _render(engine, query, analyze=True)
    stem = f"{name}_analyze"
    assert text == (GOLDEN_DIR / f"{stem}.txt").read_text(encoding="utf-8")
    assert as_json == (GOLDEN_DIR / f"{stem}.json").read_text(encoding="utf-8")


@pytest.mark.parametrize("name", sorted(ANALYZE_CASES))
def test_analyze_adds_loops_and_timings(engines, name):
    """ANALYZE decorates physical operators with loop counts and wall
    time; a plain EXPLAIN of the same query carries neither field."""
    lang, query = ANALYZE_CASES[name]
    engine = engines[0] if lang == "sparql" else engines[1]

    def walk(node):
        yield node
        for child in node.get("children", ()):
            yield from walk(child)

    analyzed = [
        n for n in walk(engine.explain(query, fmt="json", analyze=True))
        if "actual_loops" in n
    ]
    assert analyzed, "ANALYZE produced no instrumented operators"
    for node in analyzed:
        assert node["actual_loops"] >= 0, node
        assert isinstance(node["wall_ms"], float) and node["wall_ms"] >= 0, node

    plain = engine.explain(query, fmt="json")
    for node in walk(plain):
        assert "actual_loops" not in node, node
        assert "wall_ms" not in node, node


def test_explain_carries_estimates_and_actuals(engines):
    """Every physical operator reports both an estimate and the actual
    row count of the execution the EXPLAIN describes."""
    document = engines[0].explain(SPARQL_CASES["sparql_chain"], fmt="json")

    def walk(node):
        yield node
        for child in node.get("children", ()):
            yield from walk(child)

    physical = [n for n in walk(document) if n["op"] in
                ("Scan", "HashJoin", "BindJoin")]
    assert physical, document
    for node in physical:
        assert "est_rows" in node and node["actual_rows"] is not None, node


def test_explain_requires_planner():
    from repro.errors import QueryError

    graph = university_graph()
    engine = SparqlEngine(graph, planner=False)
    with pytest.raises(QueryError):
        engine.explain("SELECT ?s WHERE { ?s ?p ?o . }")


def _regenerate() -> None:  # pragma: no cover
    GOLDEN_DIR.mkdir(exist_ok=True)
    sparql, cypher = _engines()
    for name, query in SPARQL_CASES.items():
        text, as_json = _render(sparql, query)
        (GOLDEN_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        (GOLDEN_DIR / f"{name}.json").write_text(as_json, encoding="utf-8")
    for name, query in CYPHER_CASES.items():
        text, as_json = _render(cypher, query)
        (GOLDEN_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        (GOLDEN_DIR / f"{name}.json").write_text(as_json, encoding="utf-8")
    for name, (lang, query) in ANALYZE_CASES.items():
        engine = sparql if lang == "sparql" else cypher
        text, as_json = _render(engine, query, analyze=True)
        stem = f"{name}_analyze"
        (GOLDEN_DIR / f"{stem}.txt").write_text(text, encoding="utf-8")
        (GOLDEN_DIR / f"{stem}.json").write_text(as_json, encoding="utf-8")
    batched_sparql, batched_cypher = _batched_engines()
    for name, (lang, query) in BATCHED_CASES.items():
        engine = batched_sparql if lang == "sparql" else batched_cypher
        text, as_json = _render(engine, query)
        (GOLDEN_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        (GOLDEN_DIR / f"{name}.json").write_text(as_json, encoding="utf-8")
    for stem, (engine, query) in zip(
        ("sparql_adaptive_replan_analyze", "cypher_adaptive_replan_analyze"),
        _adaptive_engines(),
    ):
        text, as_json = _render(engine, query, analyze=True)
        (GOLDEN_DIR / f"{stem}.txt").write_text(text, encoding="utf-8")
        (GOLDEN_DIR / f"{stem}.json").write_text(as_json, encoding="utf-8")
    print(f"regenerated golden files in {GOLDEN_DIR}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
