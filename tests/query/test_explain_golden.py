"""Golden-file EXPLAIN snapshots for the cost-based planner.

The files under ``tests/query/golden/`` pin the exact plan rendering —
operator order, join strategy, estimated vs actual cardinalities — for a
fixed query set over the deterministic Figure 2 university fixture, so
any planner change that alters a plan shape shows up as a readable diff.
Regenerate them by running this module as a script:
``PYTHONPATH=src python tests/query/test_explain_golden.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import S3PG
from repro.datasets.university import university_graph, university_shapes
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine

GOLDEN_DIR = Path(__file__).parent / "golden"

PREFIX = "PREFIX uni: <http://example.org/university#>\n"

SPARQL_CASES = {
    # Chain join: student -> advisor -> department (two hash joins).
    "sparql_chain": PREFIX
    + "SELECT ?s ?d WHERE { ?s a uni:Student ; uni:advisedBy ?p . "
    "?p uni:worksFor ?d . }",
    # Star around the professor, with the full modifier tail.
    "sparql_star": PREFIX
    + "SELECT DISTINCT ?n WHERE { ?p a uni:Professor ; uni:name ?n ; "
    "uni:worksFor ?d . } ORDER BY ?n LIMIT 5",
    # Aggregation over a two-pattern join.
    "sparql_count": PREFIX
    + "SELECT (COUNT(*) AS ?n) WHERE { ?s uni:advisedBy ?p . "
    "?p uni:worksFor ?d . }",
}

CYPHER_CASES = {
    # The same chain, natively in Cypher (seed + expands + pivot-free).
    "cypher_chain": (
        "MATCH (s:uni_Student)-[:uni_advisedBy]->(p), "
        "(p)-[:uni_worksFor]->(d) "
        "RETURN s.iri AS s, d.iri AS d"
    ),
    # Mid-path seeding: the department end is the most selective anchor,
    # so the plan pivots and expands the chain backwards.
    "cypher_pivot": (
        "MATCH (p)-[:uni_worksFor]->(d:uni_Department) "
        "RETURN p.iri AS p ORDER BY p"
    ),
}


def _engines():
    graph = university_graph()
    result = S3PG().transform(graph, university_shapes())
    sparql = SparqlEngine(graph)
    cypher = CypherEngine(PropertyGraphStore(result.graph))
    return sparql, cypher


@pytest.fixture(scope="module")
def engines():
    return _engines()


def _render(engine, query):
    text = engine.explain(query)
    as_json = json.dumps(engine.explain(query, fmt="json"), indent=2,
                         sort_keys=True) + "\n"
    return text if text.endswith("\n") else text + "\n", as_json


@pytest.mark.parametrize("name", sorted(SPARQL_CASES))
def test_sparql_explain_matches_golden(engines, name):
    text, as_json = _render(engines[0], SPARQL_CASES[name])
    assert text == (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert as_json == (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")


@pytest.mark.parametrize("name", sorted(CYPHER_CASES))
def test_cypher_explain_matches_golden(engines, name):
    text, as_json = _render(engines[1], CYPHER_CASES[name])
    assert text == (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert as_json == (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")


def test_explain_carries_estimates_and_actuals(engines):
    """Every physical operator reports both an estimate and the actual
    row count of the execution the EXPLAIN describes."""
    document = engines[0].explain(SPARQL_CASES["sparql_chain"], fmt="json")

    def walk(node):
        yield node
        for child in node.get("children", ()):
            yield from walk(child)

    physical = [n for n in walk(document) if n["op"] in
                ("Scan", "HashJoin", "BindJoin")]
    assert physical, document
    for node in physical:
        assert "est_rows" in node and node["actual_rows"] is not None, node


def test_explain_requires_planner():
    from repro.errors import QueryError

    graph = university_graph()
    engine = SparqlEngine(graph, planner=False)
    with pytest.raises(QueryError):
        engine.explain("SELECT ?s WHERE { ?s ?p ?o . }")


def _regenerate() -> None:  # pragma: no cover
    GOLDEN_DIR.mkdir(exist_ok=True)
    sparql, cypher = _engines()
    for name, query in SPARQL_CASES.items():
        text, as_json = _render(sparql, query)
        (GOLDEN_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        (GOLDEN_DIR / f"{name}.json").write_text(as_json, encoding="utf-8")
    for name, query in CYPHER_CASES.items():
        text, as_json = _render(cypher, query)
        (GOLDEN_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        (GOLDEN_DIR / f"{name}.json").write_text(as_json, encoding="utf-8")
    print(f"regenerated golden files in {GOLDEN_DIR}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
