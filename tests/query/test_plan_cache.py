"""Regression tests for :class:`PlanCache` stale-version eviction.

Plan keys embed the statistics-catalog version, so an entry built
against an old version can never hit again once the graph mutates.
Before the version-aware sweep, such dead entries lingered until LRU
capacity pressure — under a CDC-style interleaving of queries and
mutations the cache filled with garbage and evicted live plans.
"""

from __future__ import annotations

from repro.pg.store import PropertyGraphStore
from repro.query.cypher import CypherEngine
from repro.query.plan.cache import PlanCache
from repro.query.sparql import SparqlEngine
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Triple


def test_put_sweeps_stale_version_entries():
    cache = PlanCache(maxsize=128)
    cache.put(("q1", 1), "plan-a", version=1)
    cache.put(("q2", 1), "plan-b", version=1)
    assert len(cache) == 2
    cache.put(("q1", 2), "plan-a2", version=2)
    # Both version-1 entries are dead (their keys embed version 1).
    assert len(cache) == 1
    assert cache.get(("q1", 2)) == "plan-a2"
    assert cache.get(("q1", 1)) is None
    assert cache.get(("q2", 1)) is None


def test_unversioned_put_keeps_legacy_lru_behaviour():
    cache = PlanCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.get("a") is None
    assert cache.get("c") == 3


def test_clear_resets_version_tracking():
    cache = PlanCache()
    cache.put("a", 1, version=5)
    cache.clear()
    assert len(cache) == 0
    cache.put("b", 2, version=1)  # older version after clear is fine
    assert cache.get("b") == 2


def test_cache_stays_bounded_across_mutations_sparql():
    ex = "http://example.org/"
    graph = Graph()
    p = IRI(f"{ex}knows")
    for i in range(10):
        graph.add(Triple(IRI(f"{ex}s{i}"), p, IRI(f"{ex}s{(i + 1) % 10}")))
    engine = SparqlEngine(graph)
    query = f"SELECT ?a ?b WHERE {{ ?a <{ex}knows> ?b . }}"
    for i in range(60):
        engine.query(query)
        # Mutation bumps the catalog version; the next planned query
        # must sweep the now-dead entry instead of accumulating it.
        graph.add(Triple(IRI(f"{ex}x{i}"), p, Literal(str(i))))
    engine.query(query)
    assert len(engine.planner.cache) <= 2


def test_cache_stays_bounded_across_mutations_cypher():
    ex = "http://example.org/"
    store = PropertyGraphStore()
    for i in range(6):
        store.add_node(f"s{i}", ["Person"], {"iri": f"{ex}s{i}"})
    for i in range(6):
        store.add_edge(f"s{i}", f"s{(i + 1) % 6}", ["knows"], edge_id=f"e{i}")
    engine = CypherEngine(store)
    query = "MATCH (a:Person)-[:knows]->(b) RETURN a, b"
    for i in range(40):
        engine.query(query)
        store.add_node(f"extra{i}", ["Person"], {"iri": f"{ex}extra{i}"})
    engine.query(query)
    assert len(engine.planner.cache) <= 2
