"""Property-based query-preservation test (Definition 3.2).

Random shape schemas with conforming instance data are transformed with
S3PG; for every (class, predicate) pair of the schema, the canonical
benchmark query shape is evaluated as SPARQL over the RDF graph and as
automatically translated Cypher over the PG.  Under ``tr(mu)`` the result
multisets must be identical — this is the paper's query-preservation
property, checked over the whole randomized space rather than a fixed
workload.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DEFAULT_OPTIONS, MONOTONE_OPTIONS, S3PG
from repro.eval.metrics import normalize_cypher_rows, normalize_sparql_rows
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine, SparqlToCypherTranslator

from tests.core.test_properties import schema_and_data


def _queries_for(schema) -> list[str]:
    queries = []
    for shape in schema:
        for phi in schema.effective_property_shapes(shape.name):
            queries.append(
                f"SELECT ?e ?v WHERE {{ ?e a <{shape.target_class}> ; "
                f"<{phi.path}> ?v . }}"
            )
    return queries


def _check_equivalence(schema, graph, options):
    result = S3PG(options).transform(graph, schema)
    sparql_engine = SparqlEngine(graph)
    cypher_engine = CypherEngine(PropertyGraphStore(result.graph))
    translator = SparqlToCypherTranslator(result.mapping)
    for sparql in _queries_for(schema):
        cypher = translator.translate_text(sparql)
        gt = normalize_sparql_rows(sparql_engine.query(sparql))
        pg = normalize_cypher_rows(cypher_engine.query(cypher))
        assert gt == pg, (sparql, cypher)


@given(schema_and_data())
@settings(max_examples=25, deadline=None)
def test_query_preservation_parsimonious(pair):
    """tr([[Q]]_G) == [[Q*]]_PG for every schema property (parsimonious)."""
    schema, graph = pair
    _check_equivalence(schema, graph, DEFAULT_OPTIONS)


@given(schema_and_data())
@settings(max_examples=20, deadline=None)
def test_query_preservation_non_parsimonious(pair):
    """Query preservation also holds for the non-parsimonious model."""
    schema, graph = pair
    _check_equivalence(schema, graph, MONOTONE_OPTIONS)


@given(schema_and_data())
@settings(max_examples=15, deadline=None)
def test_count_queries_preserved(pair):
    """COUNT(*) queries return identical counts on both sides."""
    schema, graph = pair
    result = S3PG(DEFAULT_OPTIONS).transform(graph, schema)
    sparql_engine = SparqlEngine(graph)
    cypher_engine = CypherEngine(PropertyGraphStore(result.graph))
    translator = SparqlToCypherTranslator(result.mapping)
    for shape in schema:
        for phi in shape.property_shapes:
            sparql = (
                f"SELECT (COUNT(*) AS ?n) WHERE {{ ?e a <{shape.target_class}> ; "
                f"<{phi.path}> ?v . }}"
            )
            cypher = translator.translate_text(sparql)
            gt = sparql_engine.query(sparql)[0]["n"].to_python()
            pg = cypher_engine.query(cypher)[0]["n"]
            assert gt == pg, (sparql, cypher)
