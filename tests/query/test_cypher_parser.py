"""Unit tests for the Cypher parser."""

import pytest

from repro.errors import QueryError
from repro.query.cypher import (
    Coalesce,
    CountStar,
    CypherComparison,
    HasLabel,
    IsNull,
    MatchClause,
    PropertyAccess,
    ReturnClause,
    UnwindClause,
    WithClause,
    parse_cypher,
)


class TestNodePatterns:
    def test_labels_and_var(self):
        q = parse_cypher("MATCH (n:Person:Student) RETURN n")
        node = q.parts[0].clauses[0].paths[0].start
        assert node.var == "n" and node.labels == ("Person", "Student")

    def test_anonymous_node(self):
        q = parse_cypher("MATCH (:Person)-[:knows]->(m) RETURN m")
        assert q.parts[0].clauses[0].paths[0].start.var is None

    def test_property_constraints(self):
        q = parse_cypher("MATCH (n {iri: 'http://x/a', age: 3}) RETURN n")
        node = q.parts[0].clauses[0].paths[0].start
        assert dict(node.properties) == {"iri": "http://x/a", "age": 3}

    def test_boolean_property_value(self):
        q = parse_cypher("MATCH (n {active: true}) RETURN n")
        assert dict(q.parts[0].clauses[0].paths[0].start.properties) == {"active": True}


class TestRelationshipPatterns:
    def test_outgoing(self):
        q = parse_cypher("MATCH (a)-[:knows]->(b) RETURN a")
        rel = q.parts[0].clauses[0].paths[0].hops[0][0]
        assert rel.direction == "out" and rel.types == ("knows",)

    def test_incoming(self):
        q = parse_cypher("MATCH (a)<-[:knows]-(b) RETURN a")
        assert q.parts[0].clauses[0].paths[0].hops[0][0].direction == "in"

    def test_undirected(self):
        q = parse_cypher("MATCH (a)-[:knows]-(b) RETURN a")
        assert q.parts[0].clauses[0].paths[0].hops[0][0].direction == "any"

    def test_alternative_types(self):
        q = parse_cypher("MATCH (a)-[:x|y|:z]->(b) RETURN a")
        assert q.parts[0].clauses[0].paths[0].hops[0][0].types == ("x", "y", "z")

    def test_relationship_variable(self):
        q = parse_cypher("MATCH (a)-[r:knows]->(b) RETURN r")
        assert q.parts[0].clauses[0].paths[0].hops[0][0].var == "r"

    def test_multi_hop_path(self):
        q = parse_cypher("MATCH (a)-[:x]->(b)-[:y]->(c) RETURN c")
        assert len(q.parts[0].clauses[0].paths[0].hops) == 2

    def test_multiple_paths_in_match(self):
        q = parse_cypher("MATCH (a)-[:x]->(b), (c:L) RETURN a")
        assert len(q.parts[0].clauses[0].paths) == 2


class TestClauses:
    def test_where(self):
        q = parse_cypher("MATCH (n) WHERE n.age > 3 RETURN n")
        assert isinstance(q.parts[0].clauses[0].where, CypherComparison)

    def test_unwind(self):
        q = parse_cypher("MATCH (n) UNWIND n.tags AS t RETURN t")
        unwind = q.parts[0].clauses[1]
        assert isinstance(unwind, UnwindClause) and unwind.var == "t"

    def test_with_star_where(self):
        q = parse_cypher("MATCH (n) UNWIND n.xs AS x WITH * WHERE x > 1 RETURN x")
        clause = q.parts[0].clauses[2]
        assert isinstance(clause, WithClause)
        assert clause.where is not None

    def test_return_alias(self):
        q = parse_cypher("MATCH (n) RETURN n.iri AS id")
        item = q.parts[0].return_clause.items[0]
        assert item.alias == "id"
        assert isinstance(item.expr, PropertyAccess)

    def test_return_distinct_limit(self):
        q = parse_cypher("MATCH (n) RETURN DISTINCT n LIMIT 7")
        assert q.parts[0].return_clause.distinct
        assert q.parts[0].return_clause.limit == 7

    def test_count_star(self):
        q = parse_cypher("MATCH (n) RETURN count(*) AS c")
        assert isinstance(q.parts[0].return_clause.items[0].expr, CountStar)

    def test_union_all(self):
        q = parse_cypher("MATCH (n:A) RETURN n.x AS v UNION ALL MATCH (n:B) RETURN n.y AS v")
        assert len(q.parts) == 2
        assert q.columns() == ["v"]

    def test_trailing_semicolon_allowed(self):
        assert parse_cypher("MATCH (n) RETURN n;").parts


class TestExpressions:
    def test_coalesce(self):
        q = parse_cypher("MATCH (n) RETURN COALESCE(n.value, n.iri) AS v")
        assert isinstance(q.parts[0].return_clause.items[0].expr, Coalesce)

    def test_is_null(self):
        q = parse_cypher("MATCH (n) WHERE n.x IS NULL RETURN n")
        assert isinstance(q.parts[0].clauses[0].where, IsNull)

    def test_is_not_null(self):
        q = parse_cypher("MATCH (n) WHERE n.x IS NOT NULL RETURN n")
        where = q.parts[0].clauses[0].where
        assert isinstance(where, IsNull) and where.negated

    def test_has_label_predicate(self):
        q = parse_cypher("MATCH (n) WHERE n:Admin RETURN n")
        assert isinstance(q.parts[0].clauses[0].where, HasLabel)

    def test_and_or_precedence(self):
        from repro.query.cypher import CypherBoolean

        q = parse_cypher("MATCH (n) WHERE n.a = 1 AND n.b = 2 OR n.c = 3 RETURN n")
        where = q.parts[0].clauses[0].where
        assert isinstance(where, CypherBoolean) and where.op == "or"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "MATCH (n)",                       # no RETURN
            "RETURN",                          # no items
            "MATCH (n RETURN n",               # unterminated node
            "MATCH (a)-[:x] (b) RETURN a",     # dangling relationship
            "MATCH (n) RETURN n LIMIT x",
            "MATCH (n) RETURN n extra",
            "MATCH (a)<-[:x]->(b) RETURN a",   # both directions
        ],
    )
    def test_invalid_queries_raise(self, bad):
        with pytest.raises(QueryError):
            parse_cypher(bad)
