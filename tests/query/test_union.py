"""Tests for SPARQL UNION and its translation to Cypher UNION ALL."""

import pytest

from repro.core import scalar_to_lexical, transform
from repro.errors import QueryError, TranslationError
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine, translate_sparql_to_cypher
from repro.query.sparql import parse_sparql
from repro.rdf import parse_turtle
from repro.shacl import parse_shacl

GRAPH = parse_turtle("""
@prefix : <http://x/> .
:a a :P ; :email "a@x" ; :phone "111" .
:b a :P ; :phone "222" .
:c a :P ; :email "c@x" .
:d a :P .
""")

PROLOG = "PREFIX : <http://x/> "


class TestSparqlUnion:
    def test_bag_union_of_alternatives(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?e ?c WHERE { ?e a :P . "
                     "{ ?e :email ?c } UNION { ?e :phone ?c } }"
        )
        assert len(rows) == 4  # a gets two rows, b and c one each

    def test_union_alternatives_share_outer_bindings(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + 'SELECT ?c WHERE { :a a :P . '
                     "{ :a :email ?c } UNION { :a :phone ?c } }"
        )
        assert sorted(str(r["c"]) for r in rows) == ["111", "a@x"]

    def test_three_way_union(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?c WHERE { "
                     "{ ?e :email ?c } UNION { ?e :phone ?c } "
                     "UNION { ?e a ?c } }"
        )
        assert len(rows) == 4 + 4  # values plus one type row per entity

    def test_union_with_filter(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?e ?c WHERE { ?e a :P . "
                     '{ ?e :email ?c } UNION { ?e :phone ?c } '
                     'FILTER(?c = "222") }'
        )
        assert [str(r["e"]) for r in rows] == ["http://x/b"]

    def test_parse_populates_unions(self):
        query = parse_sparql(
            PROLOG + "SELECT ?c WHERE { { ?e :email ?c } UNION { ?e :phone ?c } }"
        )
        assert len(query.unions) == 2

    def test_single_group_without_union_rejected(self):
        with pytest.raises(QueryError):
            parse_sparql(PROLOG + "SELECT ?c WHERE { { ?e :email ?c } }")

    def test_two_union_groups_rejected(self):
        with pytest.raises(QueryError):
            parse_sparql(
                PROLOG + "SELECT ?c WHERE { "
                         "{ ?e :email ?c } UNION { ?e :phone ?c } "
                         "{ ?e :a ?x } UNION { ?e :b ?x } }"
            )


SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:P a sh:NodeShape ; sh:targetClass :P ;
  sh:property [ sh:path :email ; sh:datatype xsd:string ;
                sh:minCount 0 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :phone ; sh:datatype xsd:string ;
                sh:minCount 0 ; sh:maxCount 1 ] .
""")


@pytest.fixture(scope="module")
def engines():
    result = transform(GRAPH, SHAPES)
    return result, SparqlEngine(GRAPH), CypherEngine(PropertyGraphStore(result.graph))


class TestUnionTranslation:
    def test_translated_union_agrees(self, engines):
        result, sparql_engine, cypher_engine = engines
        sparql = (
            PROLOG + "SELECT ?e ?c WHERE { ?e a :P . "
                     "{ ?e :email ?c } UNION { ?e :phone ?c } }"
        )
        cypher = translate_sparql_to_cypher(sparql, result.mapping)
        assert "UNION ALL" in cypher
        gt = sorted(
            (str(r["e"]), str(r["c"])) for r in sparql_engine.query(sparql)
        )
        pg = sorted(
            (scalar_to_lexical(r["e"]), scalar_to_lexical(r["c"]))
            for r in cypher_engine.query(cypher)
        )
        assert gt == pg

    def test_limit_over_union_rejected(self, engines):
        result, _, _ = engines
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?c WHERE { { ?e :email ?c } UNION "
                         "{ ?e :phone ?c } } LIMIT 2",
                result.mapping,
            )

    def test_count_over_union_rejected(self, engines):
        result, _, _ = engines
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT (COUNT(*) AS ?n) WHERE { "
                         "{ ?e :email ?c } UNION { ?e :phone ?c } }",
                result.mapping,
            )
