"""Tests for OPTIONAL / ORDER BY in both engines and the translator."""

import pytest

from repro.core import scalar_to_lexical, transform
from repro.errors import QueryError, TranslationError
from repro.pg import PropertyGraph, PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine, translate_sparql_to_cypher
from repro.query.cypher import parse_cypher
from repro.query.sparql import parse_sparql
from repro.rdf import parse_turtle
from repro.shacl import parse_shacl

GRAPH = parse_turtle("""
@prefix : <http://x/> .
:a a :P ; :name "A" ; :nick "Ace" ; :buddy :b .
:b a :P ; :name "B" .
:c a :P ; :name "C" ; :nick "Cat" .
""")

PROLOG = "PREFIX : <http://x/> "


class TestSparqlOptional:
    def test_optional_keeps_unmatched_rows(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?n ?k WHERE { ?e a :P ; :name ?n . "
                     "OPTIONAL { ?e :nick ?k } }"
        )
        assert len(rows) == 3
        assert sum(1 for r in rows if "k" in r) == 2

    def test_optional_extends_matched_rows(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + 'SELECT ?k WHERE { ?e :name "A" . OPTIONAL { ?e :nick ?k } }'
        )
        assert str(rows[0]["k"]) == "Ace"

    def test_multiple_optionals(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?n ?k ?m WHERE { ?e a :P ; :name ?n . "
                     "OPTIONAL { ?e :nick ?k } OPTIONAL { ?e :buddy ?m } }"
        )
        assert len(rows) == 3
        a_row = next(r for r in rows if str(r["n"]) == "A")
        assert str(a_row["m"]) == "http://x/b"

    def test_filter_on_unbound_optional_var_is_false(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?n WHERE { ?e a :P ; :name ?n . "
                     'OPTIONAL { ?e :nick ?k } FILTER(?k = "Cat") }'
        )
        assert [str(r["n"]) for r in rows] == ["C"]

    def test_parse_optional_group(self):
        query = parse_sparql(
            PROLOG + "SELECT ?e WHERE { ?e a :P . OPTIONAL { ?e :nick ?k } }"
        )
        assert len(query.optionals) == 1


class TestSparqlOrderBy:
    def test_ascending(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?n WHERE { ?e :name ?n . } ORDER BY ?n"
        )
        assert [str(r["n"]) for r in rows] == ["A", "B", "C"]

    def test_descending(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?n WHERE { ?e :name ?n . } ORDER BY DESC(?n)"
        )
        assert [str(r["n"]) for r in rows] == ["C", "B", "A"]

    def test_order_then_limit(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?n WHERE { ?e :name ?n . } ORDER BY ?n LIMIT 2"
        )
        assert [str(r["n"]) for r in rows] == ["A", "B"]

    def test_multiple_keys(self):
        rows = SparqlEngine(GRAPH).query(
            PROLOG + "SELECT ?n ?k WHERE { ?e :name ?n . "
                     "OPTIONAL { ?e :nick ?k } } ORDER BY ?k DESC(?n)"
        )
        # Unbound ?k sorts first.
        assert "k" not in rows[0]

    def test_empty_order_by_rejected(self):
        with pytest.raises(QueryError):
            parse_sparql(PROLOG + "SELECT ?n WHERE { ?e :name ?n . } ORDER BY")


class TestOrderByLimitPipelined:
    """LIMIT must truncate the *sorted* rows, never a pipelined prefix.

    With the planner's iterator-model operators, results stream out of
    the plan in join order; a limit smaller than the result set would
    return the wrong rows if it were applied before the sort completes.
    Both ends of the ordering are checked so at most one of them can
    coincide with the plan's emission order by accident.
    """

    STRATEGIES = (
        {"planner": False},
        {},
        {"force_join": "hash"},
        {"force_join": "nested"},
    )

    @pytest.mark.parametrize("kwargs", STRATEGIES)
    def test_sparql_sorts_before_truncating(self, kwargs):
        engine = SparqlEngine(GRAPH, **kwargs)
        base = PROLOG + "SELECT ?n WHERE { ?e a :P ; :name ?n . } ORDER BY "
        first = engine.query(base + "?n LIMIT 1")
        last = engine.query(base + "DESC(?n) LIMIT 1")
        assert [str(r["n"]) for r in first] == ["A"]
        assert [str(r["n"]) for r in last] == ["C"]

    @pytest.mark.parametrize("kwargs", STRATEGIES)
    def test_sparql_limit_smaller_than_sorted_prefix(self, kwargs):
        engine = SparqlEngine(GRAPH, **kwargs)
        rows = engine.query(
            PROLOG + "SELECT ?n WHERE { ?e a :P ; :name ?n . } "
            "ORDER BY DESC(?n) LIMIT 2"
        )
        assert [str(r["n"]) for r in rows] == ["C", "B"]

    @pytest.mark.parametrize("kwargs", STRATEGIES)
    def test_cypher_sorts_before_truncating(self, kwargs):
        pg = PropertyGraph()
        for node_id, name in (("a", "A"), ("b", "B"), ("c", "C")):
            pg.add_node(node_id, labels={"P"}, properties={"name": name})
        engine = CypherEngine(PropertyGraphStore(pg), **kwargs)
        base = "MATCH (p:P) RETURN p.name AS n ORDER BY n"
        first = engine.query(base + " LIMIT 1")
        last = engine.query(base + " DESC LIMIT 1")
        assert [r["n"] for r in first] == ["A"]
        assert [r["n"] for r in last] == ["C"]


@pytest.fixture(scope="module")
def cypher_engine():
    pg = PropertyGraph()
    pg.add_node("a", labels={"P"}, properties={"name": "A", "nick": "Ace"})
    pg.add_node("b", labels={"P"}, properties={"name": "B"})
    pg.add_node("x", labels={"N"}, properties={"v": 1})
    pg.add_edge("a", "x", labels={"rel"})
    return CypherEngine(PropertyGraphStore(pg))


class TestCypherOptionalMatch:
    def test_unmatched_binds_null(self, cypher_engine):
        rows = cypher_engine.query(
            "MATCH (p:P) OPTIONAL MATCH (p)-[:rel]->(n) "
            "RETURN p.name AS name, n.v AS v ORDER BY name"
        )
        assert rows == [{"name": "A", "v": 1}, {"name": "B", "v": None}]

    def test_optional_with_where(self, cypher_engine):
        rows = cypher_engine.query(
            "MATCH (p:P) OPTIONAL MATCH (p)-[:rel]->(n) WHERE n.v > 5 "
            "RETURN p.name AS name, n.v AS v ORDER BY name"
        )
        assert all(r["v"] is None for r in rows)

    def test_parse_optional_flag(self):
        query = parse_cypher("MATCH (p) OPTIONAL MATCH (p)-[:r]->(q) RETURN p")
        assert query.parts[0].clauses[1].optional


class TestCypherOrderBy:
    def test_order_by_alias(self, cypher_engine):
        rows = cypher_engine.query("MATCH (p:P) RETURN p.name AS n ORDER BY n DESC")
        assert [r["n"] for r in rows] == ["B", "A"]

    def test_order_by_expression(self, cypher_engine):
        rows = cypher_engine.query("MATCH (p:P) RETURN p.name AS n ORDER BY p.nick")
        # null nick ("B") sorts first.
        assert [r["n"] for r in rows] == ["B", "A"]

    def test_order_by_with_count_requires_alias(self, cypher_engine):
        with pytest.raises(QueryError):
            cypher_engine.query(
                "MATCH (p:P) RETURN count(*) AS c ORDER BY p.name"
            )

    def test_order_by_count_alias(self, cypher_engine):
        rows = cypher_engine.query(
            "MATCH (p:P) RETURN p.name AS n, count(*) AS c ORDER BY c DESC, n"
        )
        assert [r["n"] for r in rows] == ["A", "B"]


SHAPES = parse_shacl("""
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://x/> .
@prefix shapes: <http://x/shapes#> .
shapes:P a sh:NodeShape ; sh:targetClass :P ;
  sh:property [ sh:path :name ; sh:datatype xsd:string ;
                sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :nick ; sh:datatype xsd:string ;
                sh:minCount 0 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :tags ; sh:datatype xsd:string ; sh:minCount 0 ] ;
  sh:property [ sh:path :buddy ; sh:nodeKind sh:IRI ; sh:class :P ;
                sh:minCount 0 ] .
""")


@pytest.fixture(scope="module")
def translation_setup():
    result = transform(GRAPH, SHAPES)
    return result, SparqlEngine(GRAPH), CypherEngine(PropertyGraphStore(result.graph))


def check_equivalent(setup, sparql: str, columns: list[str]):
    result, sparql_engine, cypher_engine = setup
    cypher = translate_sparql_to_cypher(sparql, result.mapping)
    gt = [
        tuple(str(row[c]) if c in row else "" for c in columns)
        for row in sparql_engine.query(sparql)
    ]
    pg = [
        tuple("" if row[c] is None else scalar_to_lexical(row[c]) for c in columns)
        for row in cypher_engine.query(cypher)
    ]
    assert gt == pg, cypher
    return cypher


class TestTranslatorOptionalOrderBy:
    def test_optional_key_value(self, translation_setup):
        cypher = check_equivalent(
            translation_setup,
            PROLOG + "SELECT ?n ?k WHERE { ?e a :P ; :name ?n . "
                     "OPTIONAL { ?e :nick ?k } } ORDER BY ?n",
            ["n", "k"],
        )
        assert "OPTIONAL MATCH" not in cypher  # nullable projection instead

    def test_optional_edge(self, translation_setup):
        cypher = check_equivalent(
            translation_setup,
            PROLOG + "SELECT ?n ?m WHERE { ?e a :P ; :name ?n . "
                     "OPTIONAL { ?e :buddy ?m } } ORDER BY ?n",
            ["n", "m"],
        )
        assert "OPTIONAL MATCH" in cypher

    def test_order_by_desc(self, translation_setup):
        cypher = check_equivalent(
            translation_setup,
            PROLOG + "SELECT ?n WHERE { ?e a :P ; :name ?n . } ORDER BY DESC(?n)",
            ["n"],
        )
        assert "ORDER BY n DESC" in cypher

    def test_order_by_unprojected_var_rejected(self, translation_setup):
        result, _, _ = translation_setup
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?n WHERE { ?e a :P ; :name ?n ; :nick ?k . } "
                         "ORDER BY ?k",
                result.mapping,
            )

    def test_optional_array_key_value_rejected(self, translation_setup):
        result, _, _ = translation_setup
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?n ?t WHERE { ?e a :P ; :name ?n . "
                         "OPTIONAL { ?e :tags ?t } }",
                result.mapping,
            )

    def test_optional_type_pattern_rejected(self, translation_setup):
        result, _, _ = translation_setup
        with pytest.raises(TranslationError):
            translate_sparql_to_cypher(
                PROLOG + "SELECT ?e WHERE { ?e :name ?n . OPTIONAL { ?e a :P } }",
                result.mapping,
            )
