#!/usr/bin/env python3
"""Domain-specific pipeline on a Bio2RDF Clinical-Trials-like KG.

Shows the library on the paper's second dataset family: generate the
clinical-trials graph, extract SHACL shapes from it (the paper's [33]
workflow for graphs shipped without shapes), transform with S3PG, export
the property graph as Neo4j-style bulk CSV, and answer a few
domain questions in Cypher.

Usage::

    python examples/clinical_trials.py [scale]
"""

import sys

from repro import transform
from repro.eval import load_dataset
from repro.pg import export_csv
from repro.pgschema import check_conformance
from repro.query import CypherEngine, translate_sparql_to_cypher
from repro.shacl import shape_stats


def main(scale: float = 0.5) -> None:
    bundle = load_dataset("bio2rdf", scale=scale)
    print(f"clinical-trials KG: {len(bundle.graph)} triples")
    print("extracted SHACL shape statistics (Table 3 analogue):")
    for key, value in shape_stats(bundle.shapes).as_row().items():
        print(f"  {key:40s} {value}")
    print()

    result = transform(bundle.graph, bundle.shapes)
    print(f"property graph: {result.graph.node_count()} nodes, "
          f"{result.graph.edge_count()} edges")
    print("conforms to PG-Schema:",
          check_conformance(result.graph, result.pg_schema).conforms, "\n")

    nodes_csv, edges_csv = export_csv(result.graph)
    print(f"bulk CSV export: nodes.csv {len(nodes_csv):,} bytes, "
          f"edges.csv {len(edges_csv):,} bytes\n")

    store = result.load()
    engine = CypherEngine(store)

    questions = [
        ("study-condition pairs",
         "PREFIX ct: <http://bio2rdf.org/clinicaltrials_vocabulary:> "
         "SELECT ?s ?c WHERE "
         "{ ?s a ct:ClinicalStudy ; ct:condition ?c . }"),
        ("drug interventions of studies",
         "PREFIX ct: <http://bio2rdf.org/clinicaltrials_vocabulary:> "
         "SELECT ?s ?i WHERE { ?s a ct:ClinicalStudy ; "
         "ct:intervention ?i . ?i a ct:DrugIntervention . }"),
        ("sponsors recorded only as text",
         "PREFIX ct: <http://bio2rdf.org/clinicaltrials_vocabulary:> "
         "SELECT ?s ?sp WHERE { ?s a ct:ClinicalStudy ; ct:sponsor ?sp . }"),
    ]
    for label, sparql in questions:
        cypher = translate_sparql_to_cypher(sparql, result.mapping)
        rows = engine.query(cypher)
        print(f"{label}: {len(rows)} answers")
        print("   ", " | ".join(cypher.splitlines()))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
