#!/usr/bin/env python3
"""A production-style pipeline: stream, evolve, compact, export.

Combines the library's operational features the way a deployment would:

1. materialize a DBpedia-like KG as an N-Triples file;
2. transform it with the *file-streaming* Algorithm 1 (the graph is never
   held in memory) in the fully monotone non-parsimonious mode;
3. apply a day's worth of updates incrementally (no re-conversion);
4. extend the schema with a newly appeared node shape (monotone
   schema evolution);
5. compact the non-parsimonious graph once the schema has stabilized
   (identical to a parsimonious re-conversion, at a fraction of the cost);
6. export the result as Neo4j-style bulk CSV plus PG-Schema DDL.

Usage::

    python examples/streaming_pipeline.py [scale]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.core import (
    MONOTONE_OPTIONS,
    apply_delta,
    optimize,
    transform_file,
    transform_schema,
)
from repro.datasets import build_dbpedia2022, make_evolution_pair
from repro.pg import write_csv
from repro.pgschema import check_conformance, render_pgschema
from repro.rdf import write_ntriples
from repro.shapes import extract_shapes


def main(scale: float = 1.0) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="s3pg-pipeline-"))

    # 1. A KG dump on disk, as it would arrive from an upstream source.
    base = build_dbpedia2022(base_entities=int(400 * scale))
    pair = make_evolution_pair(base)
    dump = workdir / "kg.nt"
    count = write_ntriples(pair.old, dump)
    print(f"[1] wrote {count} triples to {dump}")

    # 2. Streaming transformation in the monotone mode.
    shapes = extract_shapes(pair.old | pair.new)
    schema_result = transform_schema(shapes, MONOTONE_OPTIONS)
    start = time.perf_counter()
    transformed = transform_file(dump, schema_result, MONOTONE_OPTIONS)
    print(f"[2] streamed {transformed.stats.triples_processed} triples -> "
          f"{transformed.graph.node_count()} nodes / "
          f"{transformed.graph.edge_count()} edges "
          f"in {(time.perf_counter() - start) * 1000:.1f} ms")

    # 3. Incremental maintenance with the next snapshot's delta.
    start = time.perf_counter()
    stats = apply_delta(transformed, added=pair.added, removed=pair.removed)
    print(f"[3] applied delta (+{stats.added_triples}/-{stats.removed_triples} "
          f"triples) in {(time.perf_counter() - start) * 1000:.1f} ms")

    # 4. The schema has settled: compact to the parsimonious layout.
    before = transformed.graph.stats()
    start = time.perf_counter()
    optimized = optimize(transformed)
    after = optimized.graph.stats()
    print(f"[4] compacted {before.n_nodes}->{after.n_nodes} nodes, "
          f"{before.n_edges}->{after.n_edges} edges "
          f"({optimized.stats.edges_folded} literal edges folded) "
          f"in {(time.perf_counter() - start) * 1000:.1f} ms")

    # 5. Sanity: the compacted graph conforms to its (parsimonious) schema.
    report = check_conformance(
        optimized.graph, optimized.schema_result.pg_schema
    )
    print(f"[5] conforms to compacted PG-Schema: {report.conforms}")

    # 6. Hand off to a graph DBMS: bulk CSV + schema DDL.
    out = workdir / "out"
    nodes_path, edges_path = write_csv(optimized.graph, out)
    (out / "schema.pgs").write_text(
        render_pgschema(optimized.schema_result.pg_schema), encoding="utf-8"
    )
    print(f"[6] exported {nodes_path.name}, {edges_path.name}, schema.pgs "
          f"to {out}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
