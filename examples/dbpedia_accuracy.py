#!/usr/bin/env python3
"""Compare S3PG against NeoSemantics and rdf2pg on a DBpedia-like KG.

Reproduces the Section 5.2 quality analysis at example scale: generates
the heterogeneous DBpedia-2022-style graph (including ``dbp:writer``-like
properties mixing literals and IRIs), transforms it with all three
methods, and reports per-query answer completeness — the Table 6
experiment.

It also prints the three Cypher variants of one heterogeneous query,
mirroring the paper's published Q22 comparison.

Usage::

    python examples/dbpedia_accuracy.py [scale]
"""

import sys

from repro.datasets import dbpedia_workload
from repro.eval import (
    accuracy_experiment,
    load_dataset,
    neosem_cypher,
    rdf2pg_cypher,
    render_table,
    run_all_transformations,
    s3pg_cypher,
)


def main(scale: float = 0.5) -> None:
    bundle = load_dataset("dbpedia2022", scale=scale)
    print(f"dataset: {len(bundle.graph)} triples, "
          f"{len(bundle.shapes)} extracted node shapes")

    runs = run_all_transformations(bundle)
    for name, run in runs.runs().items():
        stats = run.pg_stats
        print(f"  {name:8s} {run.combined_s * 1000:8.1f} ms   "
              f"{stats.n_nodes} nodes / {stats.n_edges} edges")
    print()

    workload = dbpedia_workload(bundle.spec)

    # Show the three Cypher variants of one heterogeneous query (the
    # paper's Q22-style comparison).
    hetero = next(q for q in workload if q.category.startswith("MT-Hetero"))
    print(f"{hetero.qid} ({hetero.category}):")
    print("  SPARQL      :", " ".join(hetero.sparql.split()))
    print("  S3PG        :", " | ".join(s3pg_cypher(hetero, runs.s3pg_result).splitlines()))
    print("  NeoSemantics:", " | ".join(neosem_cypher(hetero, runs.neosem_result).splitlines()))
    print("  rdf2pg      :", " | ".join(rdf2pg_cypher(hetero, runs.rdf2pg_result).splitlines()))
    print()

    rows = accuracy_experiment(bundle, workload, runs)
    print(render_table(
        [r.as_row() for r in rows],
        title="Answer completeness per query (Table 6 analogue)",
    ))

    worst = min(rows, key=lambda r: r.per_method["rdf2pg"].accuracy_percent)
    print(f"largest baseline loss: {worst.qid} — rdf2pg returns "
          f"{worst.per_method['rdf2pg'].accuracy_percent:.1f}% of the "
          f"{worst.ground_truth} expected answers; S3PG returns 100%.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
