#!/usr/bin/env python3
"""Monotone maintenance of an evolving knowledge graph (Section 5.4).

Simulates the paper's two-snapshot DBpedia experiment: a base snapshot
evolves by adding ~5.2% and deleting ~1.8% of its triples.  Instead of
re-running the whole transformation, S3PG (in its non-parsimonious,
fully monotone mode) converts only the delta — and the result is
structurally identical to a from-scratch conversion of the new snapshot.

Usage::

    python examples/evolving_graph.py [scale]
"""

import sys
import time

from repro.core import MONOTONE_OPTIONS, S3PG, apply_delta
from repro.datasets import make_evolution_pair
from repro.eval import load_dataset
from repro.shapes import extract_shapes


def main(scale: float = 1.0) -> None:
    bundle = load_dataset("dbpedia2022", scale=scale)
    pair = make_evolution_pair(bundle.graph)
    print(f"old snapshot: {len(pair.old)} triples")
    print(f"new snapshot: {len(pair.new)} triples "
          f"(+{len(pair.added)} / -{len(pair.removed)})\n")

    shapes = extract_shapes(pair.new | pair.old)
    s3pg = S3PG(MONOTONE_OPTIONS)

    # Full conversion of the old snapshot (once, up front).
    old_result = s3pg.transform(pair.old, shapes)
    print(f"initial conversion of old snapshot: "
          f"{old_result.timings['transform_s'] * 1000:.1f} ms")

    # Option A: full re-conversion of the new snapshot.
    start = time.perf_counter()
    new_result = s3pg.transform(pair.new, shapes)
    full_ms = (time.perf_counter() - start) * 1000
    print(f"full re-conversion of new snapshot : {full_ms:.1f} ms")

    # Option B: convert only the delta (monotone maintenance).
    start = time.perf_counter()
    stats = apply_delta(
        old_result.transformed, added=pair.added, removed=pair.removed
    )
    delta_ms = (time.perf_counter() - start) * 1000
    print(f"delta-only incremental conversion  : {delta_ms:.1f} ms")
    print(f"  (+{stats.edges_added} edges, +{stats.nodes_added} nodes, "
          f"-{stats.edges_removed} edges, -{stats.nodes_removed} nodes)\n")

    same = old_result.graph.structurally_equal(new_result.graph)
    print("incrementally maintained PG == from-scratch PG:", same)
    if full_ms > 0:
        print(f"time saved by converting only the delta: "
              f"{100 * (1 - delta_ms / full_ms):.1f}%")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
