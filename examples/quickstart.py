#!/usr/bin/env python3
"""Quickstart: transform the paper's Figure 2 university KG with S3PG.

Runs the complete pipeline on the running example of the paper:

1. parse the RDF graph (Figure 2a) and its SHACL shapes (Figure 2b);
2. transform both with S3PG into a property graph (Figure 2c) and a
   PG-Schema (Figure 2d);
3. check that the output conforms to the PG-Schema;
4. reconstruct the original RDF graph from the property graph (the
   information-preservation inverse mapping ``M``);
5. run a SPARQL query and its automatically translated Cypher
   counterpart, showing identical answers.

Usage::

    python examples/quickstart.py
"""

from repro import transform
from repro.core import pg_to_rdf
from repro.datasets import university_graph, university_shapes
from repro.pg import PropertyGraphStore
from repro.pgschema import check_conformance, render_pgschema
from repro.query import CypherEngine, SparqlEngine, translate_sparql_to_cypher
from repro.rdf import graphs_equal_modulo_bnodes


def main() -> None:
    # 1. Inputs: the Figure 2 running example.
    graph = university_graph()
    shapes = university_shapes()
    print(f"RDF graph: {len(graph)} triples, "
          f"{len(shapes)} SHACL node shapes\n")

    # 2. The S3PG transformation (schema + data).
    result = transform(graph, shapes)
    pg = result.graph
    print(f"Property graph: {pg.node_count()} nodes, "
          f"{pg.edge_count()} edges, "
          f"{len(pg.relationship_types())} relationship types")
    print(f"Timings: schema {result.timings['schema_s'] * 1000:.1f} ms, "
          f"data {result.timings['data_s'] * 1000:.1f} ms\n")

    print("PG-Schema (Figure 2d analogue):")
    print(render_pgschema(result.pg_schema))

    # 3. Semantics preservation: the output conforms to the PG-Schema.
    report = check_conformance(pg, result.pg_schema)
    print(f"PG conforms to PG-Schema: {report.conforms}\n")

    # 4. Information preservation: rebuild the RDF graph from the PG.
    reconstructed = pg_to_rdf(pg, result.mapping)
    print("M(F_dt(G)) == G:",
          graphs_equal_modulo_bnodes(graph, reconstructed), "\n")

    # 5. Query preservation: SPARQL vs translated Cypher.
    sparql = """
        PREFIX uni: <http://example.org/university#>
        SELECT ?s ?c WHERE { ?s a uni:GraduateStudent ;
                                uni:takesCourse ?c . }
    """
    cypher = translate_sparql_to_cypher(sparql, result.mapping)
    print("SPARQL:", " ".join(sparql.split()))
    print("Cypher:", " ".join(cypher.splitlines()))

    store = PropertyGraphStore(pg)
    sparql_rows = SparqlEngine(graph).query(sparql)
    cypher_rows = CypherEngine(store).query(cypher)
    print(f"SPARQL answers: {len(sparql_rows)}, "
          f"Cypher answers: {len(cypher_rows)}")
    for row in sorted(str(sorted(r.items())) for r in cypher_rows):
        print("  ", row)


if __name__ == "__main__":
    main()
