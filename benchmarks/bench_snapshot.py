"""Snapshot save/load vs a cold N-Triples parse.

The storage substrate's claim: opening a binary snapshot does constant
work per index bucket (mmap + zero-copy posting views, lazy term
decode), so loading should beat re-parsing the N-Triples source by a
wide margin.  This bench times both paths over the same graph, checks
the loaded graph is *usable* (a full scan plus a counter probe, so lazy
materialization cannot hide in the load number), and persists the ratio.

``REPRO_BENCH_QUICK=1`` shrinks the dataset for CI smoke runs.
"""

from __future__ import annotations

import contextlib
import gc
import os
import time

from conftest import write_json_result, write_result

from repro.eval import load_dataset, render_table
from repro.rdf.ntriples import parse_ntriples, write_ntriples
from repro.storage import load_snapshot, save_snapshot, snapshot_info

BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Dataset scale: small in quick mode, meaty otherwise.
SCALE = 0.25 if BENCH_QUICK else 2.0


def _timed(fn) -> float:
    with _gc_paused():
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start


@contextlib.contextmanager
def _gc_paused():
    """Cyclic GC off for a timed section (applied to parse and load alike).

    The bench process keeps several full graphs alive, so allocation
    bursts trigger gen-2 collections that scan the whole heap — noise a
    real cold-start load (or parse) in a fresh process never pays.
    """
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def test_snapshot_load_vs_parse(benchmark, tmp_path):
    graph = load_dataset("dbpedia2022", scale=SCALE).graph
    nt_path = tmp_path / "data.nt"
    snap_path = tmp_path / "data.snap"
    write_ntriples(sorted(graph, key=str), nt_path)
    nt_text = nt_path.read_text(encoding="utf-8")

    start = time.perf_counter()
    snap_bytes = save_snapshot(graph, snap_path)
    save_s = time.perf_counter() - start

    with _gc_paused():
        start = time.perf_counter()
        parsed = parse_ntriples(nt_text)
        parse_s = time.perf_counter() - start
    assert len(parsed) == len(graph)
    del parsed

    def load_once():
        with _gc_paused():
            return load_snapshot(snap_path)

    loaded = benchmark.pedantic(load_once, rounds=3, iterations=1)
    load_s = min(
        _timed(lambda: load_snapshot(snap_path)) for _ in range(3)
    )

    # Correctness: the loaded graph answers like the original.
    assert len(loaded) == len(graph)
    assert loaded.stats() == graph.stats()
    start = time.perf_counter()
    scanned = sum(1 for _ in loaded.triples())
    scan_s = time.perf_counter() - start
    assert scanned == len(graph)

    info = snapshot_info(snap_path)
    assert info["n_triples"] == len(graph)

    speedup = parse_s / load_s if load_s else float("inf")
    rows = [
        {"metric": "triples", "value": len(graph)},
        {"metric": "nt_bytes", "value": nt_path.stat().st_size},
        {"metric": "snap_bytes", "value": snap_bytes},
        {"metric": "parse_s", "value": round(parse_s, 4)},
        {"metric": "save_s", "value": round(save_s, 4)},
        {"metric": "load_s", "value": round(load_s, 4)},
        {"metric": "full_scan_s", "value": round(scan_s, 4)},
        {"metric": "load_speedup_vs_parse", "value": round(speedup, 1)},
    ]
    write_result(
        "snapshot.txt",
        render_table(rows, title="Snapshot load vs N-Triples parse"),
    )
    write_json_result(
        "snapshot",
        {row["metric"]: row["value"] for row in rows},
        quick=BENCH_QUICK, scale=SCALE,
    )

    # Conservative floor — the measured margin is an order of magnitude;
    # 3x keeps the assertion robust on slow shared CI runners.
    assert speedup > 3.0, f"snapshot load only {speedup:.1f}x faster than parse"
