"""Section 5.4 — monotonicity analysis on evolving snapshots.

Two snapshots differing by ~5.2% added and ~1.8% deleted triples are
converted (a) from scratch with the parsimonious and non-parsimonious
models, and (b) by applying only the delta to the existing
non-parsimonious PG.  The paper reports a ~70% time reduction for the
delta-only conversion and bitwise-equivalent output; both are asserted.
"""

from __future__ import annotations

from conftest import write_json_result, write_result

from repro.eval import monotonicity_experiment, render_table


def test_monotonicity(benchmark, dbpedia2022_bundle):
    """Run the Section 5.4 experiment and assert its two claims."""

    def run_experiment():
        return monotonicity_experiment(dbpedia2022_bundle)

    report = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = report.as_rows()
    rows.append({
        "run": "savings of delta vs full re-conversion",
        "seconds": f"{report.savings_percent:.1f}%",
    })
    write_result("monotonicity.txt", render_table(
        rows, title="Section 5.4: Monotonicity analysis"
    ))
    write_json_result(
        "monotonicity", report.as_rows(),
        savings_percent=round(report.savings_percent, 2),
        delta_matches_full=report.delta_matches_full,
        n_added=report.n_added, n_removed=report.n_removed,
    )

    # Delta-only conversion is dramatically cheaper than re-converting
    # the new snapshot (paper: ~70% cheaper).
    assert report.delta_only_s < report.parsimonious_new_s
    assert report.savings_percent > 50.0

    # Monotonicity (Definition 3.4): the incrementally maintained PG is
    # structurally identical to a from-scratch conversion.
    assert report.delta_matches_full

    # The snapshots actually differ as configured.
    assert report.n_added > 0 and report.n_removed > 0
