"""Ablation — compacting non-parsimonious graphs (paper future work).

The paper's conclusion leaves optimizing the large non-parsimonious PGs
as an open question; `repro.core.optimize` answers it by folding
parsimonious-eligible literal nodes back into records.  This bench
measures the compaction cost and verifies the size reduction, plus the
headline guarantee: the compacted graph is identical to a direct
parsimonious transformation.
"""

from __future__ import annotations

from conftest import write_json_result, write_result

from repro.core import DEFAULT_OPTIONS, MONOTONE_OPTIONS, S3PG, optimize
from repro.eval import render_table


def test_ablation_optimize(benchmark, dbpedia2022_bundle):
    """Benchmark optimize() and assert exactness + compaction."""
    bundle = dbpedia2022_bundle

    def run_once():
        nonpars = S3PG(MONOTONE_OPTIONS).transform(bundle.graph, bundle.shapes)
        before = nonpars.graph.stats()
        optimized = optimize(nonpars.transformed)
        return before, optimized

    before, optimized = benchmark.pedantic(
        run_once, rounds=3, iterations=1, warmup_rounds=1
    )
    after = optimized.graph.stats()

    pars = S3PG(DEFAULT_OPTIONS).transform(bundle.graph, bundle.shapes)
    exact = optimized.graph.structurally_equal(pars.graph)

    rows = [
        {"graph": "non-parsimonious", "nodes": before.n_nodes,
         "edges": before.n_edges},
        {"graph": "after optimize()", "nodes": after.n_nodes,
         "edges": after.n_edges},
        {"graph": "direct parsimonious", "nodes": pars.graph.stats().n_nodes,
         "edges": pars.graph.stats().n_edges},
    ]
    write_result("ablation_optimize.txt", render_table(
        rows + [{"graph": "identical to parsimonious", "nodes": str(exact),
                 "edges": ""}],
        title="Ablation: non-parsimonious graph compaction",
    ))
    write_json_result(
        "ablation_optimize", rows,
        identical_to_parsimonious=exact,
        edges_folded=optimized.stats.edges_folded,
    )

    assert exact
    assert after.n_nodes < before.n_nodes
    assert after.n_edges < before.n_edges
    assert optimized.stats.edges_folded > 0
