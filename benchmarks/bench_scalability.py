"""Scalability of the S3PG transformation (Section 5.1 context).

The paper picks DBpedia precisely "to test the scalability of S3PG".
This bench transforms the synthetic DBpedia-2022 graph at growing scales
and asserts that the two-phase streaming algorithm scales near-linearly
in the number of triples (the complexity analysis of Section 4.2.2:
O(|F| + |N| + |F|·L)).
"""

from __future__ import annotations

import gc
import time

import pytest
from conftest import write_json_result, write_result

from repro.core import S3PG
from repro.eval import load_dataset, render_table

_POINTS: dict[float, tuple[int, float]] = {}


@pytest.mark.parametrize("scale", [0.25, 0.5, 1.0, 2.0])
def test_scalability_point(benchmark, scale):
    """Measure one scale point (triples vs transform seconds)."""
    bundle = load_dataset("dbpedia2022", scale=scale)
    s3pg = S3PG()
    gc.collect()

    def run_once():
        start = time.perf_counter()
        s3pg.transform(bundle.graph, bundle.shapes)
        return time.perf_counter() - start

    seconds = benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)
    _POINTS[scale] = (len(bundle.graph), min(seconds, benchmark.stats.stats.min))


def test_scalability_report(benchmark):
    """Render the scaling curve and assert near-linear growth."""
    if len(_POINTS) < 4:
        pytest.skip("scale points were deselected")
    rows = [
        {"scale": scale, "triples": triples, "seconds": round(seconds, 4)}
        for scale, (triples, seconds) in sorted(_POINTS.items())
    ]
    write_result("scalability.txt", benchmark.pedantic(
        lambda: render_table(rows, title="S3PG transformation scalability"),
        rounds=1,
    ))
    write_json_result("scalability", rows)

    # Near-linear: going from the smallest to the largest point, time must
    # not grow super-linearly by more than a generous constant factor.
    (small_triples, small_seconds) = _POINTS[min(_POINTS)]
    (large_triples, large_seconds) = _POINTS[max(_POINTS)]
    size_ratio = large_triples / small_triples
    time_ratio = large_seconds / max(small_seconds, 1e-9)
    assert time_ratio < size_ratio * 3.0, (size_ratio, time_ratio)
