"""Table 2 — size and characteristics of the datasets.

Regenerates the dataset-statistics table over the three synthetic KGs
(scaled-down stand-ins for DBpedia 2020/2022 and Bio2RDF CT) and
benchmarks the statistics computation over the indexed triple store.
"""

from __future__ import annotations

from conftest import write_json_result, write_result

from repro.eval import render_table


def test_table2_dataset_statistics(benchmark, all_bundles):
    """Compute Table 2 and check the qualitative size relationships."""
    bundles = all_bundles

    def compute():
        return {name: bundle.graph.stats() for name, bundle in bundles.items()}

    stats = benchmark.pedantic(compute, rounds=3, iterations=1)

    rows = []
    for name, stat in stats.items():
        rows.append({"dataset": name, **stat.as_row()})
    write_result("table2_datasets.txt", render_table(
        rows, title="Table 2: Size and characteristics of the datasets"
    ))
    write_json_result("table2_datasets", rows)

    # The paper's size ordering: DBpedia2022 is the largest, and
    # DBpedia2020 is the smallest of the two DBpedia snapshots.
    assert stats["DBpedia2022"].n_triples > stats["DBpedia2020"].n_triples
    assert stats["DBpedia2022"].n_classes > stats["Bio2RDF CT"].n_classes
    for stat in stats.values():
        assert stat.n_instances > 0
        assert stat.n_literals > 0
        assert stat.n_subjects <= stat.n_triples
