"""Ablation — SPO/POS/OSP permutation indexes vs full-scan matching.

The RDF substrate maintains three permutation indexes (DESIGN.md §5.3).
This ablation evaluates the same workload queries against an index-free
store (every triple pattern answered by scanning the triple list) to
quantify what the indexes buy the SPARQL engine.
"""

from __future__ import annotations

import pytest
from conftest import write_json_result, write_result

from repro.eval import render_table
from repro.query.sparql import SparqlEngine
from repro.rdf import Graph


class ScanGraph(Graph):
    """A triple store whose pattern matching always scans everything."""

    def triples(self, s=None, p=None, o=None):
        for triple in iter(self):
            if s is not None and triple.s != s:
                continue
            if p is not None and triple.p != p:
                continue
            if o is not None and triple.o != o:
                continue
            yield triple

    def count(self, s=None, p=None, o=None):
        return sum(1 for _ in self.triples(s, p, o))


_TIMES: dict[str, float] = {}


@pytest.mark.parametrize("variant", ["indexed", "scan"])
def test_ablation_index_variants(benchmark, dbpedia2022_bundle,
                                 dbpedia_queries, variant):
    """Run a slice of the workload on one store variant."""
    if variant == "indexed":
        graph = dbpedia2022_bundle.graph
    else:
        graph = ScanGraph(dbpedia2022_bundle.graph)
    engine = SparqlEngine(graph)
    queries = [q.sparql for q in dbpedia_queries[:6]]

    def run_all():
        return sum(len(engine.query(q)) for q in queries)

    total = benchmark.pedantic(run_all, rounds=3, iterations=1, warmup_rounds=1)
    assert total > 0
    _TIMES[variant] = benchmark.stats.stats.mean


def test_ablation_index_report(benchmark):
    """Render the speedup table; the indexes must win clearly."""
    if "indexed" not in _TIMES or "scan" not in _TIMES:
        pytest.skip("variant benchmarks were deselected")
    speedup = benchmark.pedantic(
        lambda: _TIMES["scan"] / _TIMES["indexed"], rounds=1
    )
    write_result("ablation_indexes.txt", render_table(
        [
            {"variant": "indexed (SPO/POS/OSP)", "mean_s": _TIMES["indexed"]},
            {"variant": "full scan", "mean_s": _TIMES["scan"]},
            {"variant": "speedup", "mean_s": f"{speedup:.1f}x"},
        ],
        title="Ablation: permutation indexes vs full scans",
    ))
    write_json_result(
        "ablation_indexes",
        {"indexed_s": _TIMES["indexed"], "scan_s": _TIMES["scan"],
         "speedup": round(speedup, 2)},
    )
    assert speedup > 2.0
