"""Figure 6 — query runtime on the RDF engine vs the transformed PGs.

Reproduces the Section 5.3 exploratory experiment: each workload query
runs on the source RDF graph (SPARQL) and on every method's PG (Cypher),
with warm-up and repeated timed executions.  The paper's observation is
that runtimes stay comparable across models, with S3PG paying extra only
where it returns *more* (complete) answers on heterogeneous queries.
"""

from __future__ import annotations

from statistics import mean

from conftest import write_json_result, write_result

from repro.eval import render_series, runtime_experiment


def test_fig6_query_runtime(benchmark, dbpedia2022_bundle, dbpedia2022_runs,
                            dbpedia_queries):
    """Measure Figure 6 and check the comparable-runtimes claim."""

    def run_experiment():
        return runtime_experiment(
            dbpedia2022_bundle, dbpedia_queries, dbpedia2022_runs,
            repeat=3, warmup=1,
        )

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    categories: dict[str, list] = {}
    for row in rows:
        categories.setdefault(row.category, []).append(row)

    sections = []
    per_category_means: dict[str, dict[str, float]] = {}
    for category, cat_rows in categories.items():
        series = {}
        for engine in cat_rows[0].runtimes_ms:
            series[engine] = {
                row.qid: round(row.runtimes_ms[engine], 3) for row in cat_rows
            }
        sections.append(render_series(
            f"Figure 6 ({category})", series, unit="ms"
        ))
        per_category_means[category] = {
            engine: mean(row.runtimes_ms[engine] for row in cat_rows)
            for engine in cat_rows[0].runtimes_ms
        }
    write_result("fig6_query_runtime.txt", "\n".join(sections))
    write_json_result("fig6_query_runtime", [
        {"qid": row.qid, "category": row.category,
         "runtimes_ms": {k: round(v, 3) for k, v in row.runtimes_ms.items()}}
        for row in rows
    ])

    # Runtimes remain comparable between the engines: within each
    # category no engine is more than ~25x slower than the fastest
    # (the paper's Figure 6 spans about one order of magnitude).
    for category, means in per_category_means.items():
        fastest = min(means.values())
        for engine, value in means.items():
            assert value <= max(fastest * 25, fastest + 50), (category, engine)

    # Every query produced a positive runtime on every engine.
    for row in rows:
        for engine, value in row.runtimes_ms.items():
            assert value > 0, (row.qid, engine)
