"""Figure 6 — query runtime on the RDF engine vs the transformed PGs.

Reproduces the Section 5.3 exploratory experiment: each workload query
runs on the source RDF graph (SPARQL) and on every method's PG (Cypher),
with warm-up and repeated timed executions.  The paper's observation is
that runtimes stay comparable across models, with S3PG paying extra only
where it returns *more* (complete) answers on heterogeneous queries.

The second bench in this module is the cost-based-planner ablation:
the university workload (star/chain joins) with the planner on vs off,
on both engines, asserting bag-identical results always and a >=2x
join-query speedup at full scale.  ``REPRO_BENCH_QUICK=1`` shrinks the
dataset and skips the speedup assertion (CI smoke mode) — the
result-identity check still runs.
"""

from __future__ import annotations

import math
import os
import time
from statistics import mean

from conftest import write_json_result, write_result

from repro.core import S3PG
from repro.datasets.university import (
    UNIVERSITY_CYPHER_WORKLOAD,
    generate_university,
    university_shapes,
    university_workload,
)
from repro.eval import render_series, runtime_experiment
from repro.eval.metrics import normalize_cypher_rows, normalize_sparql_rows
from repro.obs import histogram_from_samples, quantiles_from_histogram
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine

BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def test_fig6_query_runtime(benchmark, dbpedia2022_bundle, dbpedia2022_runs,
                            dbpedia_queries):
    """Measure Figure 6 and check the comparable-runtimes claim."""

    def run_experiment():
        return runtime_experiment(
            dbpedia2022_bundle, dbpedia_queries, dbpedia2022_runs,
            repeat=3, warmup=1,
        )

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    categories: dict[str, list] = {}
    for row in rows:
        categories.setdefault(row.category, []).append(row)

    sections = []
    per_category_means: dict[str, dict[str, float]] = {}
    for category, cat_rows in categories.items():
        series = {}
        for engine in cat_rows[0].runtimes_ms:
            series[engine] = {
                row.qid: round(row.runtimes_ms[engine], 3) for row in cat_rows
            }
        sections.append(render_series(
            f"Figure 6 ({category})", series, unit="ms"
        ))
        per_category_means[category] = {
            engine: mean(row.runtimes_ms[engine] for row in cat_rows)
            for engine in cat_rows[0].runtimes_ms
        }
    write_result("fig6_query_runtime.txt", "\n".join(sections))
    write_json_result("fig6_query_runtime", [
        {"qid": row.qid, "category": row.category,
         "runtimes_ms": {k: round(v, 3) for k, v in row.runtimes_ms.items()}}
        for row in rows
    ])

    # Runtimes remain comparable between the engines: within each
    # category no engine is more than ~25x slower than the fastest
    # (the paper's Figure 6 spans about one order of magnitude).
    for category, means in per_category_means.items():
        fastest = min(means.values())
        for engine, value in means.items():
            assert value <= max(fastest * 25, fastest + 50), (category, engine)

    # Every query produced a positive runtime on every engine.
    for row in rows:
        for engine, value in row.runtimes_ms.items():
            assert value > 0, (row.qid, engine)


# --------------------------------------------------------------------- #
# Planner ablation (university star/chain workload)
# --------------------------------------------------------------------- #

def _timed(fn, repeat: int = 3):
    """Best-of-``repeat`` wall time in ms, plus the (last) result."""
    fn()  # warm-up: indexes, plan cache
    best, result = math.inf, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best, result


def test_fig6_planner_ablation(benchmark):
    """Planner on vs off on the university workload, both engines.

    Results must be bag-identical in every mode (the JSON artifact
    records the comparison per query); at full scale the cost-based
    plans must win the multi-pattern star/chain joins by >=2x on
    geometric mean.
    """
    scale = 0.25 if BENCH_QUICK else 4.0
    graph = generate_university(scale=scale, seed=42)
    result = S3PG().transform(graph, university_shapes())
    store = PropertyGraphStore(result.graph)

    # Estimate-vs-actual summaries from the cardinality-feedback store
    # of the planner-on engines, embedded in the JSON artifact.
    feedback: dict[str, dict] = {}

    def run_ablation():
        rows = []
        sparql_on = SparqlEngine(graph)
        sparql_off = SparqlEngine(graph, planner=False)
        for qid, category, query in university_workload():
            ms_on, r_on = _timed(lambda: sparql_on.query(query))
            ms_off, r_off = _timed(lambda: sparql_off.query(query))
            rows.append({
                "qid": qid, "lang": "sparql", "category": category,
                "rows": len(r_on),
                "planner_on_ms": round(ms_on, 3),
                "planner_off_ms": round(ms_off, 3),
                "speedup": round(ms_off / ms_on, 3),
                "results_identical":
                    normalize_sparql_rows(r_on) == normalize_sparql_rows(r_off),
            })
        cypher_on = CypherEngine(store)
        cypher_off = CypherEngine(store, planner=False)
        for qid, category, query in UNIVERSITY_CYPHER_WORKLOAD:
            ms_on, r_on = _timed(lambda: cypher_on.query(query))
            ms_off, r_off = _timed(lambda: cypher_off.query(query))
            rows.append({
                "qid": qid, "lang": "cypher", "category": category,
                "rows": len(r_on),
                "planner_on_ms": round(ms_on, 3),
                "planner_off_ms": round(ms_off, 3),
                "speedup": round(ms_off / ms_on, 3),
                "results_identical":
                    normalize_cypher_rows(r_on) == normalize_cypher_rows(r_off),
            })
        for lang, engine in (("sparql", sparql_on), ("cypher", cypher_on)):
            summary = engine.planner.feedback.summary()
            summary["worst_plans"] = [
                {"detail": entry["operators"][0]["detail"]
                          if entry["operators"] else "",
                 "max_q_error": entry["max_q_error"],
                 "executions": entry["executions"]}
                for entry in sorted(
                    engine.planner.feedback.snapshot(),
                    key=lambda e: e["max_q_error"], reverse=True,
                )[:5]
            ]
            feedback[lang] = summary
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    series = {
        mode: {f"{row['lang']}:{row['qid']}": row[f"planner_{mode}_ms"]
               for row in rows}
        for mode in ("on", "off")
    }
    write_result(
        "fig6_planner_ablation.txt",
        render_series("Planner ablation (university workload)", series,
                      unit="ms"),
    )
    # Per-language latency quantiles over the planner-on runs, derived
    # through the same histogram helper the ops endpoint reports from.
    latency_quantiles = {}
    for lang in ("sparql", "cypher"):
        samples = [
            row["planner_on_ms"] / 1000.0 for row in rows
            if row["lang"] == lang
        ]
        p50, p95, p99 = quantiles_from_histogram(
            histogram_from_samples(samples), (0.5, 0.95, 0.99)
        )
        latency_quantiles[lang] = {
            "p50_ms": round(p50 * 1000, 3),
            "p95_ms": round(p95 * 1000, 3),
            "p99_ms": round(p99 * 1000, 3),
        }

    write_json_result(
        "fig6_planner_ablation", rows,
        scale=scale, quick=BENCH_QUICK, triples=len(graph),
        feedback=feedback, latency_quantiles=latency_quantiles,
    )

    # Correctness is unconditional: identical bags in every mode.
    for row in rows:
        assert row["results_identical"], (row["qid"], row["lang"])
        assert row["rows"] > 0, row["qid"]

    # The feedback store observed every planned query: sane q-errors.
    for lang in ("sparql", "cypher"):
        assert feedback[lang]["plans"] > 0, lang
        assert feedback[lang]["max_q_error"] >= 1.0, lang
        assert math.isfinite(feedback[lang]["max_q_error"]), lang

    if BENCH_QUICK:
        return
    # The tentpole claim: cost-based plans beat naive evaluation >=2x
    # on the multi-pattern join queries (geometric mean; lookups are
    # excluded — a single-pattern scan has nothing to reorder).
    joins = [row for row in rows if row["category"] != "lookup"]
    geomean = math.exp(mean(math.log(row["speedup"]) for row in joins))
    assert geomean >= 2.0, (geomean, [
        (row["lang"], row["qid"], row["speedup"]) for row in joins
    ])
