"""Table 3 — SHACL shape statistics of the datasets.

Benchmarks the QSE-style shape extraction (the paper's [33] step) and
regenerates the per-category property-shape breakdown.
"""

from __future__ import annotations

from conftest import write_json_result, write_result

from repro.eval import render_table
from repro.shacl import shape_stats
from repro.shapes import extract_shapes


def test_table3_shape_statistics(benchmark, all_bundles):
    """Extract shapes for every dataset and check the Table 3 shape."""
    bundles = all_bundles

    def extract_all():
        return {
            name: extract_shapes(bundle.graph)
            for name, bundle in bundles.items()
        }

    schemas = benchmark.pedantic(extract_all, rounds=3, iterations=1)

    rows = []
    stats = {}
    for name, schema in schemas.items():
        stat = shape_stats(schema)
        stats[name] = stat
        rows.append({"dataset": name, **stat.as_row()})
    write_result("table3_shapes.txt", render_table(
        rows, title="Table 3: SHACL shape statistics"
    ))
    write_json_result("table3_shapes", rows)

    # The 2022 snapshot has heterogeneous and MT-homo-literal shapes;
    # the 2020 snapshot has neither (its Table 3 row reports zeros).
    assert stats["DBpedia2022"].multi_hetero > 0
    assert stats["DBpedia2022"].multi_homo_literals > 0
    assert stats["DBpedia2020"].multi_hetero == 0
    assert stats["DBpedia2020"].multi_homo_literals == 0
    # Bio2RDF has only a handful of heterogeneous shapes (3 in the paper).
    assert 1 <= stats["Bio2RDF CT"].multi_hetero <= 4
    for stat in stats.values():
        assert stat.n_property_shapes == stat.n_single_type + stat.n_multi_type
