"""Table 4 — transformation (T) and loading (L) times per method.

Benchmarks each transformer end-to-end on each dataset and regenerates
the Table 4 layout.  The paper's qualitative result — S3PG has the lowest
combined time on every dataset, and the transactional NeoSemantics import
cannot separate transformation from loading — is asserted.
"""

from __future__ import annotations

import gc

import pytest
from conftest import write_json_result, write_result

from repro.eval import (
    render_table,
    run_neosemantics,
    run_rdf2pg,
    run_s3pg,
)

_RESULTS: dict[tuple[str, str], float] = {}

_METHOD_RUNNERS = {
    "S3PG": run_s3pg,
    "rdf2pg": run_rdf2pg,
    "NeoSem": run_neosemantics,
}


@pytest.mark.parametrize("dataset", ["DBpedia2020", "DBpedia2022", "Bio2RDF CT"])
@pytest.mark.parametrize("method", ["S3PG", "rdf2pg", "NeoSem"])
def test_table4_transformation_time(benchmark, all_bundles, dataset, method):
    """Benchmark one (method, dataset) cell of Table 4."""
    bundle = all_bundles[dataset]
    runner = _METHOD_RUNNERS[method]
    gc.collect()

    def run_once():
        run, _ = runner(bundle)
        return run

    run = benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)
    _RESULTS[(dataset, method)] = run.combined_s
    if method == "NeoSem":
        # NeoSemantics loads through the database: T and L are one phase.
        assert run.transform_s is None and run.load_s is None
    else:
        assert run.transform_s is not None and run.load_s is not None


def test_table4_render_and_ordering(benchmark, all_bundles):
    """Render Table 4 and assert the winner ordering of the paper."""
    datasets = ["DBpedia2020", "DBpedia2022", "Bio2RDF CT"]
    missing = [
        (d, m) for d in datasets for m in _METHOD_RUNNERS if (d, m) not in _RESULTS
    ]
    if missing:
        # Cells may be missing when the per-cell benchmarks were
        # deselected; compute them directly (once each).
        for dataset, method in missing:
            run, _ = _METHOD_RUNNERS[method](all_bundles[dataset])
            _RESULTS[(dataset, method)] = run.combined_s

    def render():
        rows = []
        for method in ("S3PG", "rdf2pg", "NeoSem"):
            row: dict[str, object] = {"method": method}
            for dataset in datasets:
                row[dataset] = f"{_RESULTS[(dataset, method)] * 1000:.1f} ms"
            rows.append(row)
        return render_table(
            rows, title="Table 4: Transformation + loading time (combined)"
        )

    write_result("table4_transformation.txt", benchmark.pedantic(render, rounds=1))
    write_json_result("table4_transformation", [
        {"dataset": dataset, "method": method, "combined_s": round(seconds, 6)}
        for (dataset, method), seconds in sorted(_RESULTS.items())
    ])

    # S3PG wins on every dataset (the paper's headline Table 4 result).
    for dataset in datasets:
        s3pg = _RESULTS[(dataset, "S3PG")]
        assert s3pg <= _RESULTS[(dataset, "rdf2pg")] * 1.15, dataset
        assert s3pg <= _RESULTS[(dataset, "NeoSem")] * 1.15, dataset
