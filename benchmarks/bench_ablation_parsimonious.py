"""Ablation — parsimonious vs non-parsimonious transformation.

The design choice of Section 4.1.1: the parsimonious model folds
single-valued literal properties into node records (smaller output), the
non-parsimonious model materializes everything as literal nodes (larger
output, but monotone under schema evolution).  This bench quantifies the
trade-off the paper discusses: output size vs conversion time.
"""

from __future__ import annotations

import pytest
from conftest import write_json_result, write_result

from repro.core import DEFAULT_OPTIONS, MONOTONE_OPTIONS, S3PG
from repro.eval import render_table

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("mode", ["parsimonious", "non-parsimonious"])
def test_ablation_parsimonious(benchmark, dbpedia2022_bundle, mode):
    """Benchmark one mode and record its output size."""
    options = DEFAULT_OPTIONS if mode == "parsimonious" else MONOTONE_OPTIONS
    bundle = dbpedia2022_bundle

    def run_once():
        return S3PG(options).transform(bundle.graph, bundle.shapes)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)
    stats = result.graph.stats()
    _RESULTS[mode] = {
        "nodes": stats.n_nodes,
        "edges": stats.n_edges,
        "node_properties": stats.n_node_properties,
        "seconds": result.timings["transform_s"],
    }


def test_ablation_parsimonious_report(benchmark, dbpedia2022_bundle):
    """Render the trade-off table and assert the expected size ordering."""
    for mode, options in (
        ("parsimonious", DEFAULT_OPTIONS),
        ("non-parsimonious", MONOTONE_OPTIONS),
    ):
        if mode not in _RESULTS:
            result = S3PG(options).transform(
                dbpedia2022_bundle.graph, dbpedia2022_bundle.shapes
            )
            stats = result.graph.stats()
            _RESULTS[mode] = {
                "nodes": stats.n_nodes,
                "edges": stats.n_edges,
                "node_properties": stats.n_node_properties,
                "seconds": result.timings["transform_s"],
            }

    def render():
        rows = [{"mode": mode, **values} for mode, values in _RESULTS.items()]
        return render_table(
            rows, title="Ablation: parsimonious vs non-parsimonious"
        )

    write_result("ablation_parsimonious.txt", benchmark.pedantic(render, rounds=1))
    write_json_result("ablation_parsimonious", [
        {"mode": mode, **values} for mode, values in _RESULTS.items()
    ])

    pars, mono = _RESULTS["parsimonious"], _RESULTS["non-parsimonious"]
    # Non-parsimonious materializes literal nodes for *every* property:
    # strictly more nodes and edges, fewer record properties.
    assert mono["nodes"] > pars["nodes"]
    assert mono["edges"] > pars["edges"]
    assert mono["node_properties"] < pars["node_properties"]
