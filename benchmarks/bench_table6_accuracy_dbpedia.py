"""Table 6 — answer completeness on the DBpedia-2022-like dataset.

Ground truth is SPARQL over the source RDF graph; each method's Cypher
runs over its own transformed PG.  The paper's shape: S3PG is 100%
everywhere; NeoSemantics loses a little on multi-type literal and
heterogeneous properties; rdf2pg loses dramatically (down to ~30%) on
heterogeneous properties and visibly on multi-type literals.
"""

from __future__ import annotations

from conftest import write_json_result, write_result

from repro.eval import accuracy_experiment, render_table


def test_table6_accuracy_dbpedia(benchmark, dbpedia2022_bundle,
                                 dbpedia2022_runs, dbpedia_queries):
    """Regenerate Table 6 and assert the per-category loss pattern."""

    def run_experiment():
        return accuracy_experiment(
            dbpedia2022_bundle, dbpedia_queries, dbpedia2022_runs
        )

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    write_result("table6_accuracy_dbpedia.txt", render_table(
        [r.as_row() for r in rows],
        title="Table 6: Accuracy analysis for DBpedia2022",
    ))
    write_json_result("table6_accuracy_dbpedia", [r.as_row() for r in rows])

    hetero = [r for r in rows if r.category == "MT-Hetero (L+NL)"]
    homo_l = [r for r in rows if r.category == "MT-Homo (L)"]
    homo_nl = [r for r in rows if r.category == "MT-Homo (NL)"]
    assert hetero and homo_l and homo_nl

    # S3PG: 100% on every query.
    for row in rows:
        assert row.per_method["S3PG"].accuracy_percent == 100.0, row.qid

    # Every method is 100% on multi-type homogeneous non-literal queries.
    for row in homo_nl:
        for method in ("NeoSem", "rdf2pg"):
            assert row.per_method[method].accuracy_percent == 100.0, row.qid

    # rdf2pg is lossy on heterogeneous queries — below 90% on most, and
    # its worst query loses the majority of the answers (paper: ~30%).
    rdf2pg_hetero = [r.per_method["rdf2pg"].accuracy_percent for r in hetero]
    assert min(rdf2pg_hetero) < 50.0
    assert sum(1 for a in rdf2pg_hetero if a < 90.0) >= len(rdf2pg_hetero) // 2

    # NeoSemantics is close but not complete on heterogeneous queries.
    neosem_hetero = [r.per_method["NeoSem"].accuracy_percent for r in hetero]
    assert min(neosem_hetero) < 100.0
    assert min(neosem_hetero) > 85.0

    # rdf2pg also loses answers on multi-type homogeneous literals.
    rdf2pg_homo = [r.per_method["rdf2pg"].accuracy_percent for r in homo_l]
    assert min(rdf2pg_homo) < 99.0
