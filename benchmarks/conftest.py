"""Shared fixtures for the benchmark harness.

Datasets and transformation runs are generated once per session and
shared across the table/figure benchmarks.  ``BENCH_SCALE`` (environment
variable ``REPRO_BENCH_SCALE``) scales all datasets; the defaults keep a
full ``pytest benchmarks/ --benchmark-only`` run in the minutes range on
one core while preserving every effect the paper reports.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import bio2rdf_workload, dbpedia_workload
from repro.eval import load_dataset, run_all_transformations

#: Global scale multiplier for the benchmark datasets.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Where benches write their rendered tables.
RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under ``benchmarks/results`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text, encoding="utf-8")
    print("\n" + text)


@pytest.fixture(scope="session")
def dbpedia2022_bundle():
    """The DBpedia-2022-like dataset with extracted shapes."""
    return load_dataset("dbpedia2022", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def dbpedia2020_bundle():
    """The DBpedia-2020-like dataset with extracted shapes."""
    return load_dataset("dbpedia2020", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def bio2rdf_bundle():
    """The Bio2RDF-CT-like dataset with extracted shapes."""
    return load_dataset("bio2rdf", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def all_bundles(dbpedia2020_bundle, dbpedia2022_bundle, bio2rdf_bundle):
    """All three datasets keyed by name (Table 2/3/4/5 iterate these)."""
    return {
        "DBpedia2020": dbpedia2020_bundle,
        "DBpedia2022": dbpedia2022_bundle,
        "Bio2RDF CT": bio2rdf_bundle,
    }


@pytest.fixture(scope="session")
def dbpedia2022_runs(dbpedia2022_bundle):
    """All three transformations of the DBpedia-2022 dataset."""
    return run_all_transformations(dbpedia2022_bundle)


@pytest.fixture(scope="session")
def bio2rdf_runs(bio2rdf_bundle):
    """All three transformations of the Bio2RDF dataset."""
    return run_all_transformations(bio2rdf_bundle)


@pytest.fixture(scope="session")
def dbpedia_queries(dbpedia2022_bundle):
    """The Table 6 workload."""
    return dbpedia_workload(dbpedia2022_bundle.spec)


@pytest.fixture(scope="session")
def bio2rdf_queries(bio2rdf_bundle):
    """The Table 7 workload."""
    return bio2rdf_workload(bio2rdf_bundle.spec)
