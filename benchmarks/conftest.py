"""Shared fixtures for the benchmark harness.

Datasets and transformation runs are generated once per session and
shared across the table/figure benchmarks.  ``BENCH_SCALE`` (environment
variable ``REPRO_BENCH_SCALE``) scales all datasets; the defaults keep a
full ``pytest benchmarks/ --benchmark-only`` run in the minutes range on
one core while preserving every effect the paper reports.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets import bio2rdf_workload, dbpedia_workload
from repro.eval import load_dataset, run_all_transformations
from repro.obs import get_metrics

#: Global scale multiplier for the benchmark datasets.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Where benches write their rendered tables.
RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under ``benchmarks/results`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text, encoding="utf-8")
    print("\n" + text)


def write_json_result(name: str, data, **params) -> None:
    """Persist a machine-readable result under ``benchmarks/results``.

    Each bench emits its numbers twice: a rendered table for humans
    (:func:`write_result`) and a JSON document through this helper, so
    runs can be diffed by tooling without parsing text tables.  ``data``
    is the bench's row list / measurement mapping; ``params`` records
    run parameters worth keeping next to the numbers (scales, worker
    counts, ...).  ``BENCH_SCALE`` is always recorded, as is a snapshot
    of the process-wide :mod:`repro.obs` metrics registry at write time
    (transform/validator/query counters accumulated by the run).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = name[:-5] if name.endswith(".json") else name
    document = {
        "benchmark": stem,
        "bench_scale": BENCH_SCALE,
        "params": params,
        "data": data,
        "metrics": get_metrics().snapshot(),
    }
    (RESULTS_DIR / f"{stem}.json").write_text(
        json.dumps(document, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session")
def dbpedia2022_bundle():
    """The DBpedia-2022-like dataset with extracted shapes."""
    return load_dataset("dbpedia2022", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def dbpedia2020_bundle():
    """The DBpedia-2020-like dataset with extracted shapes."""
    return load_dataset("dbpedia2020", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def bio2rdf_bundle():
    """The Bio2RDF-CT-like dataset with extracted shapes."""
    return load_dataset("bio2rdf", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def all_bundles(dbpedia2020_bundle, dbpedia2022_bundle, bio2rdf_bundle):
    """All three datasets keyed by name (Table 2/3/4/5 iterate these)."""
    return {
        "DBpedia2020": dbpedia2020_bundle,
        "DBpedia2022": dbpedia2022_bundle,
        "Bio2RDF CT": bio2rdf_bundle,
    }


@pytest.fixture(scope="session")
def dbpedia2022_runs(dbpedia2022_bundle):
    """All three transformations of the DBpedia-2022 dataset."""
    return run_all_transformations(dbpedia2022_bundle)


@pytest.fixture(scope="session")
def bio2rdf_runs(bio2rdf_bundle):
    """All three transformations of the Bio2RDF dataset."""
    return run_all_transformations(bio2rdf_bundle)


@pytest.fixture(scope="session")
def dbpedia_queries(dbpedia2022_bundle):
    """The Table 6 workload."""
    return dbpedia_workload(dbpedia2022_bundle.spec)


@pytest.fixture(scope="session")
def bio2rdf_queries(bio2rdf_bundle):
    """The Table 7 workload."""
    return bio2rdf_workload(bio2rdf_bundle.spec)
