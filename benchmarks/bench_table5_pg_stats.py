"""Table 5 — statistics of the transformed property graphs.

S3PG materializes literal nodes for multi-type and heterogeneous
properties, so its PGs have substantially more nodes, edges, and
relationship types than the lossy baselines — the paper reports ~50%
more on DBpedia2022.
"""

from __future__ import annotations

from conftest import write_json_result, write_result

from repro.eval import render_table, run_all_transformations


def test_table5_pg_statistics(benchmark, dbpedia2022_bundle, bio2rdf_bundle,
                              dbpedia2022_runs, bio2rdf_runs):
    """Regenerate Table 5 and assert the S3PG-larger-output shape."""
    datasets = {
        "DBpedia2022": dbpedia2022_runs,
        "Bio2RDF CT": bio2rdf_runs,
    }

    def collect():
        return {
            name: {m: run.pg_stats for m, run in runs.runs().items()}
            for name, runs in datasets.items()
        }

    stats = benchmark.pedantic(collect, rounds=3, iterations=1)

    rows = []
    for dataset, per_method in stats.items():
        for method, stat in per_method.items():
            rows.append({
                "dataset": dataset,
                "method": method,
                "# of Nodes": stat.n_nodes,
                "# of Edges": stat.n_edges,
                "# of Rel Types": stat.n_rel_types,
            })
    write_result("table5_pg_stats.txt", render_table(
        rows, title="Table 5: Transformed graphs (PG models) statistics"
    ))
    write_json_result("table5_pg_stats", rows)

    for dataset, per_method in stats.items():
        s3pg, neosem, rdf2pg = (
            per_method["S3PG"], per_method["NeoSem"], per_method["rdf2pg"]
        )
        # S3PG produces strictly more nodes/edges than both baselines
        # (literal nodes) and at least as many relationship types.
        assert s3pg.n_nodes > neosem.n_nodes, dataset
        assert s3pg.n_nodes > rdf2pg.n_nodes, dataset
        assert s3pg.n_edges > neosem.n_edges, dataset
        assert s3pg.n_rel_types >= neosem.n_rel_types, dataset
        # The two baselines produce graphs of the same size (they apply
        # the same naive mapping; Table 5 shows identical rows for them).
        assert neosem.n_nodes == rdf2pg.n_nodes, dataset
        assert neosem.n_edges == rdf2pg.n_edges, dataset
