"""Overhead of the observability layer (the zero-cost-when-disabled claim).

The :mod:`repro.obs` instrumentation in the hot paths is guarded by a
module-level tracer check: with no tracer configured, ``obs.span`` hands
back a shared no-op context manager and the query engines skip their
stats collection entirely.  This bench pins that property down two ways:

* a micro-benchmark of the disabled ``obs.span`` call itself, asserting
  the per-call cost times a generous span count stays under 5% of the
  serial transform's wall time,
* an A/B of the serial transform with tracing off vs. on, reported (but
  not asserted — wall-clock A/Bs at this scale are noise-dominated), and
* the same per-call budget argument with the **flight recorder**
  installed: bounded span ring + fast-path ``record_query`` hook must
  also land under 5%, and the ring must stay at its capacity bound.
"""

from __future__ import annotations

import time

from conftest import write_json_result, write_result

from repro import obs
from repro.core.pipeline import S3PG
from repro.eval import render_table

#: A traced serial transform emits well under this many spans.
SPAN_BUDGET = 100

#: The satellite requirement: disabled tracing must cost < 5%.
MAX_OVERHEAD = 0.05


def _transform_seconds(bundle) -> float:
    start = time.perf_counter()
    S3PG().transform(bundle.graph, bundle.shapes)
    return time.perf_counter() - start


def test_disabled_span_is_noop(dbpedia2022_bundle):
    """Per-call cost of a disabled span, scaled to a whole run's spans."""
    assert not obs.enabled()

    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench.noop"):
            pass
    per_call = (time.perf_counter() - start) / calls

    transform_s = min(
        _transform_seconds(dbpedia2022_bundle) for _ in range(3)
    )
    overhead = per_call * SPAN_BUDGET / transform_s
    rows = [{
        "noop_span_ns": round(per_call * 1e9, 1),
        "span_budget": SPAN_BUDGET,
        "transform_s": round(transform_s, 4),
        "overhead_pct": round(overhead * 100, 4),
    }]
    write_result("obs_overhead.txt", render_table(
        rows, title="Disabled-tracing overhead (serial transform)"
    ))
    write_json_result("obs_overhead", rows)
    assert overhead < MAX_OVERHEAD, (
        f"disabled obs.span costs {overhead:.2%} of a serial transform"
    )


def test_traced_vs_untraced_transform(dbpedia2022_bundle):
    """Report the wall-time A/B; tracing on must still finish sanely."""
    untraced = min(_transform_seconds(dbpedia2022_bundle) for _ in range(3))

    obs.configure()
    try:
        traced = min(_transform_seconds(dbpedia2022_bundle) for _ in range(3))
        spans = len(obs.get_tracer())
    finally:
        obs.disable()
        obs.get_metrics().reset()

    write_json_result(
        "obs_overhead_ab",
        [{
            "untraced_s": round(untraced, 4),
            "traced_s": round(traced, 4),
            "spans": spans,
        }],
    )
    assert spans > 0
    assert spans <= SPAN_BUDGET


def test_recorder_overhead(dbpedia2022_bundle):
    """Flight-recorder-enabled instrumentation must stay under 5%.

    The recorder path is costlier than disabled tracing: every span
    lands in the bounded ring and every finished query pays the
    ``record_query`` threshold check.  Both per-call costs, scaled by
    the span budget, must still fit the same 5% envelope — and the span
    ring must honour its capacity bound no matter how many spans flow
    through it.
    """
    assert not obs.enabled()
    transform_s = min(_transform_seconds(dbpedia2022_bundle) for _ in range(3))

    calls = 100_000
    recorder = obs.install_recorder(span_capacity=1024, slow_threshold_ms=100.0)
    try:
        assert obs.enabled()  # the recorder's bounded tracer is live

        start = time.perf_counter()
        for _ in range(calls):
            with obs.span("bench.recorded"):
                pass
        per_span = (time.perf_counter() - start) / calls

        start = time.perf_counter()
        for _ in range(calls):
            # Fast path: below the slow threshold, so no capture.
            obs.record_query("sparql", "SELECT 1", 0.0001, 1)
        per_record = (time.perf_counter() - start) / calls

        # The ring is bounded: 100k spans flowed, at most 1024 retained.
        assert len(recorder.tracer) <= recorder.span_capacity
        assert len(recorder.slow()) == 0  # nothing crossed the threshold

        overhead = (per_span + per_record) * SPAN_BUDGET / transform_s
        rows = [{
            "recorded_span_ns": round(per_span * 1e9, 1),
            "record_query_ns": round(per_record * 1e9, 1),
            "span_budget": SPAN_BUDGET,
            "spans_buffered": len(recorder.tracer),
            "span_capacity": recorder.span_capacity,
            "transform_s": round(transform_s, 4),
            "overhead_pct": round(overhead * 100, 4),
        }]
        write_result("obs_overhead_recorder.txt", render_table(
            rows, title="Flight-recorder overhead (serial transform)"
        ))
        write_json_result("obs_overhead_recorder", rows)
        assert overhead < MAX_OVERHEAD, (
            f"flight recorder costs {overhead:.2%} of a serial transform"
        )
    finally:
        obs.uninstall_recorder()
        obs.get_metrics().reset()
    assert not obs.enabled()


def test_statements_tracking_overhead(dbpedia2022_bundle):
    """Workload statement tracking must also fit the 5% envelope.

    Per the same budget argument: the per-call cost of
    ``obs.record_statement`` — fingerprint the (pre-parsed) query,
    update the per-statement aggregate, bump the metric families —
    scaled by the span budget must stay under 5% of a serial transform.
    The disabled hook (no tracker installed) must be near-free.
    """
    from repro.query.sparql.parser import parse_sparql

    transform_s = min(_transform_seconds(dbpedia2022_bundle) for _ in range(3))

    text = (
        "SELECT ?s ?name WHERE { "
        "?s a <http://example.org/T> . "
        "?s <http://example.org/name> ?name }"
    )
    query = parse_sparql(text)
    calls = 20_000

    # Disabled: the None-check fast path.
    assert obs.get_workload() is None
    start = time.perf_counter()
    for _ in range(calls):
        obs.record_statement("sparql", text, query, 0.001, 10)
    per_disabled = (time.perf_counter() - start) / calls

    obs.install_workload()
    try:
        start = time.perf_counter()
        for _ in range(calls):
            obs.record_statement(
                "sparql", text, query, 0.001, 10,
                cache_hit=True, q_error=1.5,
            )
        per_enabled = (time.perf_counter() - start) / calls
    finally:
        obs.uninstall_workload()
        obs.get_metrics().reset()

    overhead = per_enabled * SPAN_BUDGET / transform_s
    rows = [{
        "disabled_hook_ns": round(per_disabled * 1e9, 1),
        "record_statement_ns": round(per_enabled * 1e9, 1),
        "span_budget": SPAN_BUDGET,
        "transform_s": round(transform_s, 4),
        "overhead_pct": round(overhead * 100, 4),
    }]
    write_result("obs_overhead_statements.txt", render_table(
        rows, title="Statement-tracking overhead (serial transform)"
    ))
    write_json_result("obs_overhead_statements", rows)
    assert overhead < MAX_OVERHEAD, (
        f"statement tracking costs {overhead:.2%} of a serial transform"
    )
