"""Exec-mode ablation: iterator vs batched vs adaptive execution.

Companion to the planner on/off ablation in
``bench_fig6_query_runtime.py``: the university star/chain workload runs
through the planner's three execution modes on both engines.  Results
must be bag-identical to the iterator pipeline in every mode and every
query (the JSON artifact records the comparison per query); at full
scale the vectorized batched operators must win the multi-pattern join
queries by >=1.5x on geometric mean.  ``REPRO_BENCH_QUICK=1`` shrinks
the dataset and skips the speedup assertion (CI smoke mode) — the
result-identity check still runs.

The adaptive arm also reports how many mid-query re-plans the workload
triggered (the uniform university generator rarely fools the catalog,
so zero is an acceptable — and recorded — answer here; the skew-forced
re-plan path is pinned by the differential tests instead).
"""

from __future__ import annotations

import math
import os
import time
from statistics import mean

from conftest import write_json_result, write_result

from repro.core import S3PG
from repro.datasets.university import (
    UNIVERSITY_CYPHER_WORKLOAD,
    generate_university,
    university_shapes,
    university_workload,
)
from repro.eval import render_series
from repro.eval.metrics import normalize_cypher_rows, normalize_sparql_rows
from repro.pg import PropertyGraphStore
from repro.query import CypherEngine, SparqlEngine

BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

MODES = ("iterator", "batched", "adaptive")


def _timed(fn, repeat: int = 3):
    """Best-of-``repeat`` wall time in ms, plus the (last) result."""
    fn()  # warm-up: indexes, plan cache
    best, result = math.inf, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best, result


def test_fig6_exec_mode_ablation(benchmark):
    """Iterator vs batched vs adaptive on the university workload."""
    scale = 0.25 if BENCH_QUICK else 4.0
    graph = generate_university(scale=scale, seed=42)
    result = S3PG().transform(graph, university_shapes())
    store = PropertyGraphStore(result.graph)

    replans = {"sparql": 0, "cypher": 0}

    def run_ablation():
        rows = []
        engines = {
            mode: SparqlEngine(graph, exec_mode=mode) for mode in MODES
        }
        for qid, category, query in university_workload():
            timings, bags = {}, {}
            for mode in MODES:
                ms, res = _timed(lambda m=mode: engines[m].query(query))
                timings[mode] = ms
                bags[mode] = normalize_sparql_rows(res)
                if mode == "adaptive":
                    replans["sparql"] += len(
                        engines[mode].planner.last_replans
                    )
            rows.append({
                "qid": qid, "lang": "sparql", "category": category,
                "rows": sum(bags["iterator"].values()),
                **{f"{mode}_ms": round(timings[mode], 3) for mode in MODES},
                "batched_speedup":
                    round(timings["iterator"] / timings["batched"], 3),
                "results_identical":
                    bags["batched"] == bags["iterator"]
                    and bags["adaptive"] == bags["iterator"],
            })
        engines = {
            mode: CypherEngine(store, exec_mode=mode) for mode in MODES
        }
        for qid, category, query in UNIVERSITY_CYPHER_WORKLOAD:
            timings, bags = {}, {}
            for mode in MODES:
                ms, res = _timed(lambda m=mode: engines[m].query(query))
                timings[mode] = ms
                bags[mode] = normalize_cypher_rows(res)
                if mode == "adaptive":
                    replans["cypher"] += len(
                        engines[mode].planner.last_replans
                    )
            rows.append({
                "qid": qid, "lang": "cypher", "category": category,
                "rows": sum(bags["iterator"].values()),
                **{f"{mode}_ms": round(timings[mode], 3) for mode in MODES},
                "batched_speedup":
                    round(timings["iterator"] / timings["batched"], 3),
                "results_identical":
                    bags["batched"] == bags["iterator"]
                    and bags["adaptive"] == bags["iterator"],
            })
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    series = {
        mode: {f"{row['lang']}:{row['qid']}": row[f"{mode}_ms"]
               for row in rows}
        for mode in MODES
    }
    write_result(
        "fig6_exec_mode_ablation.txt",
        render_series("Exec-mode ablation (university workload)", series,
                      unit="ms"),
    )
    write_json_result(
        "fig6_exec_mode_ablation", rows,
        scale=scale, quick=BENCH_QUICK, triples=len(graph),
        replans=replans,
    )

    # Correctness is unconditional: every mode returns the iterator bag.
    for row in rows:
        assert row["results_identical"], (row["qid"], row["lang"])
        assert row["rows"] > 0, row["qid"]

    if BENCH_QUICK:
        return
    # The tentpole claim: batched execution beats the tuple-at-a-time
    # iterator >=1.5x on the multi-pattern join queries (geometric mean;
    # lookups are excluded — a single-pattern scan decodes every row
    # either way).
    joins = [row for row in rows if row["category"] != "lookup"]
    geomean = math.exp(
        mean(math.log(row["batched_speedup"]) for row in joins)
    )
    assert geomean >= 1.5, (geomean, [
        (row["lang"], row["qid"], row["batched_speedup"]) for row in joins
    ])
