"""Memory usage of the three transformation pipelines (Table 4 context).

The paper reports that S3PG and NeoSemantics stayed within a 32 GB memory
limit while rdf2pg needed 64 GB "due to its in-memory transformations"
(full materialization plus YARS-PG and CSV intermediates).  This bench
measures peak Python allocations per method with :mod:`tracemalloc` and
asserts the same ordering: rdf2pg is the heaviest.
"""

from __future__ import annotations

import os

import pytest
from conftest import write_json_result, write_result

from repro.eval import (
    render_table,
    run_neosemantics,
    run_rdf2pg,
    run_s3pg,
    traced_memory,
)

#: ``REPRO_BENCH_QUICK=1`` halves the measurement rounds for CI smoke runs.
BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
_ROUNDS = 1 if BENCH_QUICK else 2

_PEAKS: dict[str, float] = {}

_RUNNERS = {
    "S3PG": run_s3pg,
    "rdf2pg": run_rdf2pg,
    "NeoSem": run_neosemantics,
}


@pytest.mark.parametrize("method", ["S3PG", "rdf2pg", "NeoSem"])
def test_memory_per_method(benchmark, dbpedia2022_bundle, method):
    """Measure one method's peak allocations during transformation."""
    bundle = dbpedia2022_bundle
    runner = _RUNNERS[method]

    def run_with_tracing():
        with traced_memory() as holder:
            runner(bundle)
        return holder[0]

    usage = benchmark.pedantic(run_with_tracing, rounds=_ROUNDS, iterations=1)
    _PEAKS[method] = usage.peak_mb
    assert usage.peak_bytes > 0


def test_memory_report(benchmark, dbpedia2022_bundle):
    """Render the comparison and assert rdf2pg's in-memory overhead."""
    for method, runner in _RUNNERS.items():
        if method not in _PEAKS:
            with traced_memory() as holder:
                runner(dbpedia2022_bundle)
            _PEAKS[method] = holder[0].peak_mb

    rows = [
        {"method": method, "peak_MB": round(peak, 2)}
        for method, peak in _PEAKS.items()
    ]
    write_result("memory.txt", benchmark.pedantic(
        lambda: render_table(rows, title="Peak transformation memory"), rounds=1
    ))
    write_json_result("memory", rows, quick=BENCH_QUICK)

    # The paper's observation: rdf2pg needs the most memory (it holds the
    # whole graph plus YARS-PG and CSV serializations at once).
    assert _PEAKS["rdf2pg"] > _PEAKS["S3PG"]
    assert _PEAKS["rdf2pg"] > _PEAKS["NeoSem"]
