"""Scalability of the sharded parallel engine (worker sweep).

Transforms a ≥100k-triple synthetic DBpedia-2022 graph serially and with
1/2/4 engine workers, and reports the speedup of each configuration over
the serial baseline.  Monotonicity (Proposition 4.3) guarantees all
configurations produce the same property graph, which is sanity-checked
on the output sizes (the full isomorphism check lives in
``tests/engine/test_executor.py``).

The ≥1.5x speedup assertion at 4 workers only makes sense when the
machine actually has 4 cores to run them on; on smaller hosts the sweep
still runs (validating the engine end-to-end) but the assertion is
skipped and the report says so.
"""

from __future__ import annotations

import os
import time

from conftest import write_json_result, write_result

from repro.core import S3PG
from repro.eval import load_dataset, render_table

#: Fixed dataset scale, independent of BENCH_SCALE: the speedup claim
#: needs a graph large enough (>=100k triples) to amortize pool startup.
_SCALE = 6.0

_WORKER_SWEEP = (1, 2, 4)

#: Required speedup of 4 workers over serial — on a >=4-core machine.
_TARGET_SPEEDUP = 1.5


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def test_parallel_scalability(benchmark):
    """Sweep engine workers on a >=100k-triple graph; report the speedup."""
    bundle = load_dataset("dbpedia2022", scale=_SCALE)
    assert len(bundle.graph) >= 100_000, len(bundle.graph)
    s3pg = S3PG()

    def sweep():
        results = {}
        start = time.perf_counter()
        serial = s3pg.transform(bundle.graph, bundle.shapes)
        results["serial"] = (time.perf_counter() - start, serial)
        for workers in _WORKER_SWEEP:
            start = time.perf_counter()
            result = s3pg.transform(
                bundle.graph, bundle.shapes, parallel=workers
            )
            results[f"workers={workers}"] = (time.perf_counter() - start, result)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    serial_s, serial_result = results["serial"]
    serial_stats = serial_result.graph.stats()
    rows = []
    for config, (seconds, result) in results.items():
        stats = result.graph.stats()
        # Monotonicity sanity check: every configuration produces a graph
        # of exactly the serial size (full isomorphism is tested in
        # tests/engine/test_executor.py).
        assert stats.n_nodes == serial_stats.n_nodes, config
        assert stats.n_edges == serial_stats.n_edges, config
        rows.append({
            "config": config,
            "triples": len(bundle.graph),
            "seconds": round(seconds, 4),
            "speedup": round(serial_s / seconds, 3),
        })

    cores = _available_cores()
    enforced = cores >= max(_WORKER_SWEEP)
    note = (
        f"speedup target {_TARGET_SPEEDUP}x at 4 workers "
        f"({'enforced' if enforced else f'not enforced: only {cores} core(s)'})"
    )
    write_result("parallel_scalability.txt", render_table(
        rows, title=f"Parallel engine scalability — {note}"
    ))
    write_json_result(
        "parallel_scalability", rows,
        scale=_SCALE, cores=cores, target_speedup=_TARGET_SPEEDUP,
        target_enforced=enforced,
    )

    speedup4 = serial_s / results["workers=4"][0]
    if enforced:
        assert speedup4 >= _TARGET_SPEEDUP, (
            f"4-worker speedup {speedup4:.2f}x below the "
            f"{_TARGET_SPEEDUP}x target on a {cores}-core machine"
        )
