"""CDC streaming throughput: deltas/sec, apply latency, and staleness.

Replays a randomized add/remove delta history of the DBpedia-2022-like
dataset through the :mod:`repro.cdc` pipeline and measures the service
characteristics the subsystem exists for:

* **throughput** — deltas applied per second end-to-end;
* **latency** — p50/p99 of per-delta apply latency (arrival to applied);
* **staleness** — p99 of how far the materialized PG lagged the stream;
* **revalidation sparsity** — focus nodes rechecked incrementally vs.
  what a full revalidation per batch would have inspected.

The run also asserts the subsystem's correctness claim (the streamed
store equals the from-scratch transform of the final graph, catalogs
included) so a perf number is never reported for a wrong result.

``REPRO_BENCH_QUICK=1`` shrinks the stream for smoke runs (CI).
"""

from __future__ import annotations

import os
import random
import time

from conftest import write_json_result, write_result

from repro.cdc import CDCConfig, CDCPipeline, Delta, replay_deltas
from repro.core import transform
from repro.eval import render_table
from repro.obs import histogram_from_samples, quantiles_from_histogram
from repro.pg import PropertyGraphStore
from repro.rdf.graph import Graph
from repro.shacl.validator import DeltaValidator

BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Deltas in the stream (quick mode keeps CI in the seconds range).
N_DELTAS = 60 if BENCH_QUICK else 600
#: Triples per delta (mixed adds/removes).
DELTA_SIZE = 4


def _quantiles_ms(samples: list[float], qs: tuple) -> list[float]:
    """Histogram-derived quantiles in milliseconds (shared obs helper)."""
    histogram = histogram_from_samples(samples)
    return [
        round(q * 1000, 3) for q in quantiles_from_histogram(histogram, qs)
    ]


def _build_stream(graph: Graph) -> tuple[list, list[Delta], set]:
    """Split the dataset into a base graph and a delta history."""
    rng = random.Random(11)
    triples = sorted(graph, key=str)
    rng.shuffle(triples)
    n_stream_adds = min(len(triples) // 10, N_DELTAS * DELTA_SIZE)
    base = triples[n_stream_adds:]
    pending = triples[:n_stream_adds]
    current = set(base)
    removed_pool: list = []
    deltas: list[Delta] = []
    for seq in range(1, N_DELTAS + 1):
        added, removed = [], []
        for _ in range(DELTA_SIZE):
            roll = rng.random()
            if roll < 0.55 and pending:
                added.append(pending.pop())
            elif roll < 0.70 and removed_pool:
                added.append(removed_pool.pop())
            elif current:
                victim = rng.choice(sorted(current, key=str))
                if victim not in added:
                    removed.append(victim)
        for t in removed:
            if t in current:
                current.discard(t)
                removed_pool.append(t)
        current.update(added)
        if added or removed:
            deltas.append(Delta(seq, tuple(added), tuple(removed)))
    return base, deltas, current


def test_cdc_stream(benchmark, dbpedia2022_bundle):
    """Stream a delta history and report service-level measurements."""
    base, deltas, final = _build_stream(dbpedia2022_bundle.graph)
    shapes = dbpedia2022_bundle.shapes

    graph = Graph(base)
    result = transform(graph, shapes)
    store = PropertyGraphStore(result.graph)
    validator = DeltaValidator(shapes, graph)
    pipeline = CDCPipeline(
        result.transformed,
        graph,
        store=store,
        validator=validator,
        # One delta per batch: the replay pre-enqueues the whole stream,
        # so larger batches would merge every delta into one revalidation
        # pass and hide the per-delta service characteristics.
        config=CDCConfig(max_batch_size=1, max_linger_s=0.0),
    )

    def run_stream():
        start = time.perf_counter()
        stats = replay_deltas(pipeline, deltas)
        return stats, time.perf_counter() - start

    stats, elapsed = benchmark.pedantic(run_stream, rounds=1, iterations=1)

    # Correctness first: the streamed result is the from-scratch result.
    scratch = transform(Graph(final), shapes).graph
    assert store.graph.structurally_equal(scratch)
    assert store.catalog_discrepancies() == []
    fresh = DeltaValidator(shapes, graph)
    assert validator.snapshot() == fresh.snapshot()

    # Delta-scoped revalidation inspects far fewer focus nodes than a
    # full recheck per batch would have.
    full_equivalent = validator.focus_count * stats.batches
    sparsity = (
        stats.focus_rechecked / full_equivalent if full_equivalent else 0.0
    )
    assert stats.focus_rechecked < full_equivalent

    throughput = stats.deltas_applied / elapsed if elapsed else 0.0
    latency_p50_ms, latency_p99_ms = _quantiles_ms(
        stats.latencies, (0.5, 0.99)
    )
    (staleness_p99_ms,) = _quantiles_ms(stats.staleness, (0.99,))
    measurements = {
        "deltas_applied": stats.deltas_applied,
        "batches": stats.batches,
        "triples_added": stats.triples_added,
        "triples_removed": stats.triples_removed,
        "deltas_per_s": round(throughput, 1),
        "latency_p50_ms": latency_p50_ms,
        "latency_p99_ms": latency_p99_ms,
        "staleness_p99_ms": staleness_p99_ms,
        "focus_rechecked": stats.focus_rechecked,
        "focus_full_equivalent": full_equivalent,
        "recheck_fraction": round(sparsity, 4),
    }
    write_result(
        "cdc_stream.txt",
        render_table(
            [{"metric": key, "value": str(value)}
             for key, value in measurements.items()],
            title="CDC streaming (delta apply + delta-scoped revalidation)",
        ),
    )
    write_json_result(
        "cdc_stream", measurements,
        quick=BENCH_QUICK, n_deltas=len(deltas), delta_size=DELTA_SIZE,
    )

    assert stats.deltas_applied == len(deltas)
    assert stats.deltas_quarantined == 0
    assert stats.latencies
