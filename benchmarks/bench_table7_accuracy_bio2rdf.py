"""Table 7 — answer completeness on the Bio2RDF-CT-like dataset.

Same protocol as Table 6 on the domain-specific KG: S3PG stays at 100%;
the baselines' losses are smaller than on DBpedia because the clinical
trials schema has far fewer heterogeneous properties (Table 3).
"""

from __future__ import annotations

from conftest import write_json_result, write_result

from repro.eval import accuracy_experiment, render_table


def test_table7_accuracy_bio2rdf(benchmark, bio2rdf_bundle, bio2rdf_runs,
                                 bio2rdf_queries):
    """Regenerate Table 7 and assert the per-category loss pattern."""

    def run_experiment():
        return accuracy_experiment(bio2rdf_bundle, bio2rdf_queries, bio2rdf_runs)

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    write_result("table7_accuracy_bio2rdf.txt", render_table(
        [r.as_row() for r in rows],
        title="Table 7: Accuracy analysis for Bio2RDF",
    ))
    write_json_result("table7_accuracy_bio2rdf", [r.as_row() for r in rows])

    # S3PG: 100% everywhere.
    for row in rows:
        assert row.per_method["S3PG"].accuracy_percent == 100.0, row.qid

    # Homogeneous non-literal queries: every method complete.
    for row in rows:
        if row.category == "MT-Homo (NL)":
            assert row.per_method["rdf2pg"].accuracy_percent == 100.0
            assert row.per_method["NeoSem"].accuracy_percent == 100.0

    # Heterogeneous queries: rdf2pg loses answers; NeoSem nearly complete.
    hetero = [r for r in rows if r.category == "MT-Hetero (L+NL)"]
    assert hetero
    assert min(r.per_method["rdf2pg"].accuracy_percent for r in hetero) < 100.0
    assert min(r.per_method["NeoSem"].accuracy_percent for r in hetero) >= 95.0
